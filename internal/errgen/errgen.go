// Package errgen is a BART-style error generator (Arocena et al. 2015):
// it scrambles cell values with respect to target functional dependencies
// so that the dirtied relation contains a controlled number of violating
// tuple pairs, and it keeps the ground truth (which rows and cells were
// corrupted) that the evaluation's F1 metric is scored against.
//
// The paper uses it in two modes, both provided here:
//
//   - ratio mode (§A.2): per m violations injected for the target FD(s),
//     inject n violations for each alternative FD — the user-study
//     scenarios use ratios 1/3 and 2/3;
//   - degree mode (§C.1): inject until the fraction of violating pairs
//     reaches a desired degree d (the evaluation sweeps d < 35%).
package errgen

import (
	"fmt"
	"sort"

	"exptrain/internal/dataset"
	"exptrain/internal/fd"
	"exptrain/internal/stats"
)

// Change records one cell corruption.
type Change struct {
	Row, Attr int
	Old, New  string
}

// Result is a dirtied relation plus its ground truth.
type Result struct {
	// Rel is the dirtied copy; the input relation is never modified.
	Rel *dataset.Relation
	// DirtyRows is the set of rows containing at least one corrupted
	// cell. The evaluation's error-detection F1 is computed against this
	// set.
	DirtyRows map[int]struct{}
	// DirtyCells is the set of corrupted cells.
	DirtyCells map[fd.Cell]struct{}
	// Log lists every corruption in injection order.
	Log []Change

	inj *injector
}

// CleanRows returns the complement of DirtyRows: the ground-truth clean
// set c_g of §A.2.
func (r *Result) CleanRows() map[int]struct{} {
	clean := make(map[int]struct{})
	for i := 0; i < r.Rel.NumRows(); i++ {
		if _, dirty := r.DirtyRows[i]; !dirty {
			clean[i] = struct{}{}
		}
	}
	return clean
}

func newResult(rel *dataset.Relation) *Result {
	return &Result{
		Rel:        rel.Clone(),
		DirtyRows:  make(map[int]struct{}),
		DirtyCells: make(map[fd.Cell]struct{}),
	}
}

func (r *Result) record(c Change) {
	r.Log = append(r.Log, c)
	r.DirtyRows[c.Row] = struct{}{}
	r.DirtyCells[fd.Cell{Row: c.Row, Attr: c.Attr}] = struct{}{}
}

// injector holds the incremental state that makes repeated single-cell
// corruption of one Result cheap: a warm PLI cache answering the group
// structure under delta replay, a lexicographic ordering of each LHS's
// groups that survives edits to other attributes, and reusable scan
// scratch. It exists for speed only — for a fixed seed the injection
// trajectory is identical to the original rebuild-per-change code,
// which grouped rows by projected key strings from scratch on every
// call.
type injector struct {
	res   *Result
	cache *fd.PLICache
	// dirty mirrors res.DirtyRows as a flat flag array (the candidate
	// scan touches every multi-group row, so map lookups would dominate).
	dirty []bool
	// orders caches, per LHS, the indices of the LHS partition's classes
	// sorted by projected key — the enumeration order the original code
	// obtained by sorting the group-key strings each call. It stays
	// valid until an LHS attribute is edited, which degree-mode
	// injection (RHS edits only) never does.
	orders map[fd.AttrSet]*lhsOrder
	// Scan scratch, reused across calls.
	cand           []bool
	cleanC, dirtyC []int32
	occ            []int
	dom            []string
}

type lhsOrder struct {
	version  uint64
	classIdx []int
}

// injector returns the Result's lazily created incremental injector.
func (r *Result) injector() *injector {
	if r.inj == nil {
		n := r.Rel.NumRows()
		inj := &injector{
			res:    r,
			cache:  fd.NewPLICache(r.Rel),
			dirty:  make([]bool, n),
			cand:   make([]bool, n),
			orders: make(map[fd.AttrSet]*lhsOrder),
		}
		for row := range r.DirtyRows { // flag-array seeding is order-independent
			inj.dirty[row] = true
		}
		r.inj = inj
	}
	return r.inj
}

// lhsOrder returns p's class indices sorted by projected LHS key,
// rebuilding only when an LHS attribute changed (or journal coverage was
// lost) since the order was computed.
func (inj *injector) lhsOrder(lhs fd.AttrSet, p *fd.Partition) *lhsOrder {
	rel := inj.res.Rel
	ord := inj.orders[lhs]
	if ord != nil && ord.version != rel.Version() {
		if deltas, ok := rel.DeltasSince(ord.version); ok {
			for _, d := range deltas {
				if d.Old != d.New && lhs.Has(d.Col) {
					ord = nil
					break
				}
			}
			if ord != nil {
				ord.version = rel.Version()
			}
		} else {
			ord = nil
		}
	}
	if ord == nil {
		attrs := lhs.Attrs()
		keys := make([]string, len(p.Classes))
		idx := make([]int, len(p.Classes))
		for i, cls := range p.Classes {
			keys[i] = rel.ProjectKey(int(cls[0]), attrs)
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			if keys[idx[a]] != keys[idx[b]] {
				return keys[idx[a]] < keys[idx[b]]
			}
			return idx[a] < idx[b]
		})
		ord = &lhsOrder{version: rel.Version(), classIdx: idx}
		inj.orders[lhs] = ord
	}
	return ord
}

// domain returns the sorted distinct values currently present in
// attribute a, counting occurrences by dictionary code (same contents as
// collecting value strings into a set, since codes and strings are in
// bijection per column).
func (inj *injector) domain(a int) []string {
	rel := inj.res.Rel
	codes := rel.ColumnCodes(a)
	d := rel.DictLen(a)
	if len(inj.occ) < d {
		inj.occ = make([]int, d)
	}
	occ := inj.occ
	for _, c := range codes {
		occ[c]++
	}
	inj.dom = inj.dom[:0]
	for c := 0; c < d; c++ {
		if occ[c] > 0 {
			inj.dom = append(inj.dom, rel.DictValue(a, int32(c)))
		}
		occ[c] = 0
	}
	sort.Strings(inj.dom)
	return inj.dom //etlint:ignore scratchalias injectOne consumes the domain before the next call
}

// injectOne scrambles the RHS value of one row so that the row newly
// violates f against at least one other row agreeing on f's LHS. It
// returns false when the relation has no multi-row LHS group left to
// corrupt. Rows already dirty are preferred last so corruption spreads.
//
// Candidates are rows of LHS-groups of size ≥ 2 whose RHS currently
// agrees with at least one group mate (so changing it creates a new
// violation) — exactly the members of the stripped partition on
// LHS ∪ {RHS}. They are enumerated in the original order: groups by
// ascending projected key, rows ascending within a group.
func injectOne(res *Result, f fd.FD, rng *stats.RNG) bool {
	inj := res.injector()
	rel := res.Rel
	p1 := inj.cache.Partition(f.LHS)
	p2 := inj.cache.Partition(f.LHS.Add(f.RHS))
	ord := inj.lhsOrder(f.LHS, p1)

	if n := rel.NumRows(); len(inj.cand) < n {
		inj.cand = make([]bool, n)
		grown := make([]bool, n)
		copy(grown, inj.dirty)
		inj.dirty = grown
	}
	for _, cls := range p2.Classes {
		for _, r := range cls {
			inj.cand[r] = true
		}
	}
	inj.cleanC, inj.dirtyC = inj.cleanC[:0], inj.dirtyC[:0]
	for _, ci := range ord.classIdx {
		for _, r := range p1.Classes[ci] {
			if !inj.cand[r] {
				continue
			}
			if inj.dirty[r] {
				inj.dirtyC = append(inj.dirtyC, r)
			} else {
				inj.cleanC = append(inj.cleanC, r)
			}
		}
	}
	for _, cls := range p2.Classes {
		for _, r := range cls {
			inj.cand[r] = false
		}
	}
	cand := inj.cleanC
	if len(cand) == 0 {
		cand = inj.dirtyC
	}
	if len(cand) == 0 {
		return false
	}
	row := int(cand[rng.Intn(len(cand))])
	old := rel.Value(row, f.RHS)

	// New value: a different value from the attribute domain, or a
	// synthesized typo when the domain is degenerate. Picking index k
	// from the sorted domain with old's position skipped is the original
	// "filter out old, then index" draw without building the filtered
	// slice.
	dom := inj.domain(f.RHS)
	var newVal string
	if len(dom) > 1 {
		k := rng.Intn(len(dom) - 1)
		if k >= sort.SearchStrings(dom, old) {
			k++
		}
		newVal = dom[k]
	} else {
		newVal = old + "~err"
	}
	rel.SetValue(row, f.RHS, newVal)
	res.record(Change{Row: row, Attr: f.RHS, Old: old, New: newVal})
	inj.dirty[row] = true
	return true
}

// InjectCount corrupts the relation with respect to f until `count` new
// corruptions have been applied (or no further corruption is possible).
// It returns the number actually injected.
func InjectCount(res *Result, f fd.FD, count int, rng *stats.RNG) int {
	injected := 0
	for injected < count {
		if !injectOne(res, f, rng) {
			break
		}
		injected++
	}
	return injected
}

// RatioConfig drives the user-study scenario generation of §A.2.
type RatioConfig struct {
	// Target is the FD(s) the scenario designates as ground truth.
	Target []fd.FD
	// Alternatives are the distractor FDs a participant might plausibly
	// believe.
	Alternatives []fd.FD
	// TargetViolations is m: the number of violations injected per
	// target FD.
	TargetViolations int
	// Ratio is n/m: violations injected per alternative FD for every m
	// target violations. The paper uses 1/3 and 2/3.
	Ratio float64
	// Seed drives the injection RNG.
	Seed uint64
}

// InjectRatio dirties rel per the scenario configuration and returns the
// result with ground truth. It errors when the configuration is invalid.
func InjectRatio(rel *dataset.Relation, cfg RatioConfig) (*Result, error) {
	if len(cfg.Target) == 0 {
		return nil, fmt.Errorf("errgen: no target FDs")
	}
	if cfg.TargetViolations <= 0 {
		return nil, fmt.Errorf("errgen: TargetViolations must be positive, got %d", cfg.TargetViolations)
	}
	if cfg.Ratio < 0 {
		return nil, fmt.Errorf("errgen: negative ratio %v", cfg.Ratio)
	}
	rng := stats.NewRNG(cfg.Seed)
	res := newResult(rel)
	for _, f := range cfg.Target {
		InjectCount(res, f, cfg.TargetViolations, rng)
	}
	altCount := int(float64(cfg.TargetViolations)*cfg.Ratio + 0.5)
	for _, f := range cfg.Alternatives {
		InjectCount(res, f, altCount, rng)
	}
	return res, nil
}

// ViolationDegree measures the degree of violation of the FDs over rel:
// the mean, over the FDs, of the fraction of LHS-agreeing pairs that are
// violations. FDs with no agreeing pairs contribute 0.
func ViolationDegree(rel *dataset.Relation, fds []fd.FD) float64 {
	if len(fds) == 0 {
		return 0
	}
	var total float64
	for _, f := range fds {
		st := fd.ComputeStats(f, rel)
		if st.Agreeing > 0 {
			total += float64(st.Violating) / float64(st.Agreeing)
		}
	}
	return total / float64(len(fds))
}

// DegreeConfig drives degree-targeted injection (§C.1).
type DegreeConfig struct {
	// FDs are the dependencies whose violation degree is controlled.
	FDs []fd.FD
	// Degree is the desired mean violating-pair fraction in (0, 1).
	Degree float64
	// MaxChanges bounds the total corruptions (0 means rows/2).
	MaxChanges int
	// Seed drives the injection RNG.
	Seed uint64
}

// InjectDegree corrupts rel until ViolationDegree reaches cfg.Degree (or
// corruption stalls / MaxChanges is hit). Round-robin over the FDs keeps
// the degrees balanced across them.
func InjectDegree(rel *dataset.Relation, cfg DegreeConfig) (*Result, error) {
	if len(cfg.FDs) == 0 {
		return nil, fmt.Errorf("errgen: no FDs")
	}
	if cfg.Degree <= 0 || cfg.Degree >= 1 {
		return nil, fmt.Errorf("errgen: degree %v out of (0,1)", cfg.Degree)
	}
	maxChanges := cfg.MaxChanges
	if maxChanges <= 0 {
		maxChanges = rel.NumRows() / 2
		if maxChanges < 1 {
			maxChanges = 1
		}
	}
	rng := stats.NewRNG(cfg.Seed)
	res := newResult(rel)
	// Degree is re-measured after every single-cell corruption; the
	// injector's warm PLI cache absorbs each corruption as one delta and
	// answers the per-FD stats from its memo, so the check is O(|fds|)
	// instead of re-partitioning the relation per change. The counts —
	// and therefore the injection trajectory for a fixed seed — are
	// identical to ViolationDegree over ComputeStats.
	cache := res.injector().cache
	degree := func() float64 {
		var total float64
		for _, f := range cfg.FDs {
			st := cache.Stats(f)
			if st.Agreeing > 0 {
				total += float64(st.Violating) / float64(st.Agreeing)
			}
		}
		return total / float64(len(cfg.FDs))
	}
	changes := 0
	for changes < maxChanges && degree() < cfg.Degree {
		progressed := false
		for _, f := range cfg.FDs {
			if changes >= maxChanges || degree() >= cfg.Degree {
				break
			}
			if injectOne(res, f, rng) {
				changes++
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	return res, nil
}
