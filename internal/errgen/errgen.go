// Package errgen is a BART-style error generator (Arocena et al. 2015):
// it scrambles cell values with respect to target functional dependencies
// so that the dirtied relation contains a controlled number of violating
// tuple pairs, and it keeps the ground truth (which rows and cells were
// corrupted) that the evaluation's F1 metric is scored against.
//
// The paper uses it in two modes, both provided here:
//
//   - ratio mode (§A.2): per m violations injected for the target FD(s),
//     inject n violations for each alternative FD — the user-study
//     scenarios use ratios 1/3 and 2/3;
//   - degree mode (§C.1): inject until the fraction of violating pairs
//     reaches a desired degree d (the evaluation sweeps d < 35%).
package errgen

import (
	"fmt"
	"sort"

	"exptrain/internal/dataset"
	"exptrain/internal/fd"
	"exptrain/internal/stats"
)

// Change records one cell corruption.
type Change struct {
	Row, Attr int
	Old, New  string
}

// Result is a dirtied relation plus its ground truth.
type Result struct {
	// Rel is the dirtied copy; the input relation is never modified.
	Rel *dataset.Relation
	// DirtyRows is the set of rows containing at least one corrupted
	// cell. The evaluation's error-detection F1 is computed against this
	// set.
	DirtyRows map[int]struct{}
	// DirtyCells is the set of corrupted cells.
	DirtyCells map[fd.Cell]struct{}
	// Log lists every corruption in injection order.
	Log []Change
}

// CleanRows returns the complement of DirtyRows: the ground-truth clean
// set c_g of §A.2.
func (r *Result) CleanRows() map[int]struct{} {
	clean := make(map[int]struct{})
	for i := 0; i < r.Rel.NumRows(); i++ {
		if _, dirty := r.DirtyRows[i]; !dirty {
			clean[i] = struct{}{}
		}
	}
	return clean
}

func newResult(rel *dataset.Relation) *Result {
	return &Result{
		Rel:        rel.Clone(),
		DirtyRows:  make(map[int]struct{}),
		DirtyCells: make(map[fd.Cell]struct{}),
	}
}

func (r *Result) record(c Change) {
	r.Log = append(r.Log, c)
	r.DirtyRows[c.Row] = struct{}{}
	r.DirtyCells[fd.Cell{Row: c.Row, Attr: c.Attr}] = struct{}{}
}

// domain returns the sorted distinct values of attribute a in rel.
func domain(rel *dataset.Relation, a int) []string {
	seen := make(map[string]struct{})
	for i := 0; i < rel.NumRows(); i++ {
		seen[rel.Value(i, a)] = struct{}{}
	}
	vals := make([]string, 0, len(seen))
	for v := range seen {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	return vals
}

// injectOne scrambles the RHS value of one row so that the row newly
// violates f against at least one other row agreeing on f's LHS. It
// returns false when the relation has no multi-row LHS group left to
// corrupt. Rows already dirty are preferred last so corruption spreads.
func injectOne(res *Result, f fd.FD, rng *stats.RNG) bool {
	rel := res.Rel
	lhs := f.LHS.Attrs()

	groups := make(map[string][]int)
	var keys []string
	for i := 0; i < rel.NumRows(); i++ {
		key := rel.ProjectKey(i, lhs)
		if _, ok := groups[key]; !ok {
			keys = append(keys, key)
		}
		groups[key] = append(groups[key], i)
	}
	sort.Strings(keys)

	// Candidate rows: members of groups of size ≥ 2 whose RHS currently
	// agrees with at least one group mate (so changing it creates a new
	// violation). Prefer rows that are still clean.
	var cleanCand, dirtyCand []int
	for _, key := range keys {
		rows := groups[key]
		if len(rows) < 2 {
			continue
		}
		counts := make(map[string]int)
		for _, r := range rows {
			counts[rel.Value(r, f.RHS)]++
		}
		for _, r := range rows {
			if counts[rel.Value(r, f.RHS)] >= 2 {
				if _, dirty := res.DirtyRows[r]; dirty {
					dirtyCand = append(dirtyCand, r)
				} else {
					cleanCand = append(cleanCand, r)
				}
			}
		}
	}
	cand := cleanCand
	if len(cand) == 0 {
		cand = dirtyCand
	}
	if len(cand) == 0 {
		return false
	}
	row := cand[rng.Intn(len(cand))]
	old := rel.Value(row, f.RHS)

	// New value: a different value from the attribute domain, or a
	// synthesized typo when the domain is degenerate.
	dom := domain(rel, f.RHS)
	var choices []string
	for _, v := range dom {
		if v != old {
			choices = append(choices, v)
		}
	}
	var newVal string
	if len(choices) > 0 {
		newVal = choices[rng.Intn(len(choices))]
	} else {
		newVal = old + "~err"
	}
	rel.SetValue(row, f.RHS, newVal)
	res.record(Change{Row: row, Attr: f.RHS, Old: old, New: newVal})
	return true
}

// InjectCount corrupts the relation with respect to f until `count` new
// corruptions have been applied (or no further corruption is possible).
// It returns the number actually injected.
func InjectCount(res *Result, f fd.FD, count int, rng *stats.RNG) int {
	injected := 0
	for injected < count {
		if !injectOne(res, f, rng) {
			break
		}
		injected++
	}
	return injected
}

// RatioConfig drives the user-study scenario generation of §A.2.
type RatioConfig struct {
	// Target is the FD(s) the scenario designates as ground truth.
	Target []fd.FD
	// Alternatives are the distractor FDs a participant might plausibly
	// believe.
	Alternatives []fd.FD
	// TargetViolations is m: the number of violations injected per
	// target FD.
	TargetViolations int
	// Ratio is n/m: violations injected per alternative FD for every m
	// target violations. The paper uses 1/3 and 2/3.
	Ratio float64
	// Seed drives the injection RNG.
	Seed uint64
}

// InjectRatio dirties rel per the scenario configuration and returns the
// result with ground truth. It errors when the configuration is invalid.
func InjectRatio(rel *dataset.Relation, cfg RatioConfig) (*Result, error) {
	if len(cfg.Target) == 0 {
		return nil, fmt.Errorf("errgen: no target FDs")
	}
	if cfg.TargetViolations <= 0 {
		return nil, fmt.Errorf("errgen: TargetViolations must be positive, got %d", cfg.TargetViolations)
	}
	if cfg.Ratio < 0 {
		return nil, fmt.Errorf("errgen: negative ratio %v", cfg.Ratio)
	}
	rng := stats.NewRNG(cfg.Seed)
	res := newResult(rel)
	for _, f := range cfg.Target {
		InjectCount(res, f, cfg.TargetViolations, rng)
	}
	altCount := int(float64(cfg.TargetViolations)*cfg.Ratio + 0.5)
	for _, f := range cfg.Alternatives {
		InjectCount(res, f, altCount, rng)
	}
	return res, nil
}

// ViolationDegree measures the degree of violation of the FDs over rel:
// the mean, over the FDs, of the fraction of LHS-agreeing pairs that are
// violations. FDs with no agreeing pairs contribute 0.
func ViolationDegree(rel *dataset.Relation, fds []fd.FD) float64 {
	if len(fds) == 0 {
		return 0
	}
	var total float64
	for _, f := range fds {
		st := fd.ComputeStats(f, rel)
		if st.Agreeing > 0 {
			total += float64(st.Violating) / float64(st.Agreeing)
		}
	}
	return total / float64(len(fds))
}

// DegreeConfig drives degree-targeted injection (§C.1).
type DegreeConfig struct {
	// FDs are the dependencies whose violation degree is controlled.
	FDs []fd.FD
	// Degree is the desired mean violating-pair fraction in (0, 1).
	Degree float64
	// MaxChanges bounds the total corruptions (0 means rows/2).
	MaxChanges int
	// Seed drives the injection RNG.
	Seed uint64
}

// InjectDegree corrupts rel until ViolationDegree reaches cfg.Degree (or
// corruption stalls / MaxChanges is hit). Round-robin over the FDs keeps
// the degrees balanced across them.
func InjectDegree(rel *dataset.Relation, cfg DegreeConfig) (*Result, error) {
	if len(cfg.FDs) == 0 {
		return nil, fmt.Errorf("errgen: no FDs")
	}
	if cfg.Degree <= 0 || cfg.Degree >= 1 {
		return nil, fmt.Errorf("errgen: degree %v out of (0,1)", cfg.Degree)
	}
	maxChanges := cfg.MaxChanges
	if maxChanges <= 0 {
		maxChanges = rel.NumRows() / 2
		if maxChanges < 1 {
			maxChanges = 1
		}
	}
	rng := stats.NewRNG(cfg.Seed)
	res := newResult(rel)
	changes := 0
	for changes < maxChanges && ViolationDegree(res.Rel, cfg.FDs) < cfg.Degree {
		progressed := false
		for _, f := range cfg.FDs {
			if changes >= maxChanges || ViolationDegree(res.Rel, cfg.FDs) >= cfg.Degree {
				break
			}
			if injectOne(res, f, rng) {
				changes++
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	return res, nil
}
