package dataset

import (
	"strings"
	"testing"
	"testing/quick"

	"exptrain/internal/stats"
)

// paperRelation builds Table 1 from the paper: the 5-tuple basketball
// instance used by Examples 1 and 2.
func paperRelation(t *testing.T) *Relation {
	t.Helper()
	rel := New(MustSchema("Player", "Team", "City", "Role", "Apps"))
	for _, row := range [][]string{
		{"Carter", "Lakers", "L.A.", "C", "4"},
		{"Jordan", "Lakers", "Chicago", "PF", "4"},
		{"Smith", "Bulls", "Chicago", "PF", "4"},
		{"Black", "Bulls", "Chicago", "C", "3"},
		{"Miller", "Clippers", "L.A.", "PG", "3"},
	} {
		rel.MustAppend(Tuple(row))
	}
	return rel
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema should error")
	}
	if _, err := NewSchema("a", ""); err == nil {
		t.Error("empty attribute name should error")
	}
	if _, err := NewSchema("a", "b", "a"); err == nil {
		t.Error("duplicate attribute should error")
	}
	s, err := NewSchema("a", "b")
	if err != nil {
		t.Fatalf("valid schema errored: %v", err)
	}
	if s.Arity() != 2 {
		t.Errorf("Arity = %d, want 2", s.Arity())
	}
}

func TestSchemaIndex(t *testing.T) {
	s := MustSchema("x", "y", "z")
	if i, ok := s.Index("y"); !ok || i != 1 {
		t.Errorf("Index(y) = %d,%v", i, ok)
	}
	if _, ok := s.Index("w"); ok {
		t.Error("Index(w) should not exist")
	}
	if s.MustIndex("z") != 2 {
		t.Error("MustIndex(z) != 2")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustIndex on unknown attribute did not panic")
		}
	}()
	s.MustIndex("nope")
}

func TestSchemaEqual(t *testing.T) {
	a := MustSchema("x", "y")
	b := MustSchema("x", "y")
	c := MustSchema("y", "x")
	d := MustSchema("x", "y", "z")
	if !a.Equal(b) {
		t.Error("identical schemas not Equal")
	}
	if a.Equal(c) {
		t.Error("order matters: a should not equal c")
	}
	if a.Equal(d) {
		t.Error("different arity should not be Equal")
	}
}

func TestSchemaNamesIsCopy(t *testing.T) {
	s := MustSchema("x", "y")
	names := s.Names()
	names[0] = "mutated"
	if s.Name(0) != "x" {
		t.Error("Names() leaked internal slice")
	}
}

func TestAppendArityCheck(t *testing.T) {
	r := New(MustSchema("a", "b"))
	if err := r.Append(Tuple{"1"}); err == nil {
		t.Error("short tuple should error")
	}
	if err := r.Append(Tuple{"1", "2", "3"}); err == nil {
		t.Error("long tuple should error")
	}
	if err := r.Append(Tuple{"1", "2"}); err != nil {
		t.Errorf("valid tuple errored: %v", err)
	}
	if r.NumRows() != 1 {
		t.Errorf("NumRows = %d, want 1", r.NumRows())
	}
}

func TestProjectKeySeparatorSafety(t *testing.T) {
	// ("ab","c") must not collide with ("a","bc").
	r := New(MustSchema("x", "y"))
	r.MustAppend(Tuple{"ab", "c"})
	r.MustAppend(Tuple{"a", "bc"})
	attrs := []int{0, 1}
	if r.ProjectKey(0, attrs) == r.ProjectKey(1, attrs) {
		t.Fatal("ProjectKey collided on adversarial values")
	}
}

func TestEqualOn(t *testing.T) {
	rel := paperRelation(t)
	team := rel.Schema().MustIndex("Team")
	city := rel.Schema().MustIndex("City")
	if !rel.EqualOn(0, 1, []int{team}) {
		t.Error("t1 and t2 share Team=Lakers")
	}
	if rel.EqualOn(0, 1, []int{city}) {
		t.Error("t1 and t2 differ on City")
	}
	if !rel.EqualOn(0, 1, nil) {
		t.Error("every pair agrees on the empty attribute set")
	}
}

func TestCloneIsDeep(t *testing.T) {
	rel := paperRelation(t)
	c := rel.Clone()
	c.SetValue(0, 0, "Changed")
	if rel.Value(0, 0) != "Carter" {
		t.Error("Clone shares row storage with original")
	}
}

func TestSubset(t *testing.T) {
	rel := paperRelation(t)
	sub := rel.Subset([]int{4, 0})
	if sub.NumRows() != 2 {
		t.Fatalf("Subset rows = %d, want 2", sub.NumRows())
	}
	if sub.Value(0, 0) != "Miller" || sub.Value(1, 0) != "Carter" {
		t.Error("Subset did not preserve requested order")
	}
	sub.SetValue(0, 0, "X")
	if rel.Value(4, 0) != "Miller" {
		t.Error("Subset shares storage with original")
	}
}

func TestSampleDistinctAndBounded(t *testing.T) {
	rel := paperRelation(t)
	rng := stats.NewRNG(1)
	idx := rel.Sample(rng, 3)
	if len(idx) != 3 {
		t.Fatalf("Sample returned %d rows", len(idx))
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if i < 0 || i >= rel.NumRows() || seen[i] {
			t.Fatalf("bad sample %v", idx)
		}
		seen[i] = true
	}
	// Requesting more than available clamps.
	if got := rel.Sample(rng, 100); len(got) != rel.NumRows() {
		t.Fatalf("oversized Sample returned %d rows", len(got))
	}
}

func TestSplitFractions(t *testing.T) {
	r := New(MustSchema("a"))
	for i := 0; i < 100; i++ {
		r.MustAppend(Tuple{string(rune('a' + i%26))})
	}
	rng := stats.NewRNG(2)
	train, test := r.Split(rng, 0.7)
	if len(train) != 70 || len(test) != 30 {
		t.Fatalf("Split sizes = %d/%d, want 70/30", len(train), len(test))
	}
	seen := map[int]bool{}
	for _, i := range append(append([]int{}, train...), test...) {
		if seen[i] {
			t.Fatal("Split duplicated a row index")
		}
		seen[i] = true
	}
	if len(seen) != 100 {
		t.Fatalf("Split covered %d rows, want 100", len(seen))
	}
}

func TestSplitClamped(t *testing.T) {
	r := New(MustSchema("a"))
	for i := 0; i < 10; i++ {
		r.MustAppend(Tuple{"v"})
	}
	rng := stats.NewRNG(3)
	train, test := r.Split(rng, 1.5)
	if len(train) != 10 || len(test) != 0 {
		t.Fatalf("clamped Split = %d/%d", len(train), len(test))
	}
	train, test = r.Split(rng, -0.5)
	if len(train) != 0 || len(test) != 10 {
		t.Fatalf("clamped Split = %d/%d", len(train), len(test))
	}
}

func TestNewPairCanonical(t *testing.T) {
	p := NewPair(5, 2)
	if p.A != 2 || p.B != 5 {
		t.Fatalf("NewPair(5,2) = %v, want (2,5)", p)
	}
	if NewPair(2, 5) != p {
		t.Fatal("pair canonical form not order independent")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewPair(i,i) did not panic")
		}
	}()
	NewPair(3, 3)
}

func TestAllPairsCount(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw % 40)
		ps := AllPairs(n)
		want := 0
		if n >= 2 {
			want = n * (n - 1) / 2
		}
		if len(ps) != want {
			return false
		}
		seen := map[Pair]bool{}
		for _, p := range ps {
			if p.A >= p.B || p.B >= n || seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rel := paperRelation(t)
	var sb strings.Builder
	if err := rel.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Schema().Equal(rel.Schema()) {
		t.Fatal("round trip changed schema")
	}
	if back.NumRows() != rel.NumRows() {
		t.Fatalf("round trip changed row count: %d vs %d", back.NumRows(), rel.NumRows())
	}
	for i := 0; i < rel.NumRows(); i++ {
		for j := 0; j < rel.Schema().Arity(); j++ {
			if back.Value(i, j) != rel.Value(i, j) {
				t.Fatalf("round trip changed cell (%d,%d)", i, j)
			}
		}
	}
}

func TestCSVRoundTripWithCommasAndQuotes(t *testing.T) {
	rel := New(MustSchema("a", "b"))
	rel.MustAppend(Tuple{`has,comma`, `has"quote`})
	rel.MustAppend(Tuple{"has\nnewline", ""})
	var sb strings.Builder
	if err := rel.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Value(0, 0) != `has,comma` || back.Value(0, 1) != `has"quote` {
		t.Fatal("quoting lost on round trip")
	}
	if back.Value(1, 0) != "has\nnewline" {
		t.Fatal("newline lost on round trip")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input should error")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("ragged row should error")
	}
	if _, err := ReadCSV(strings.NewReader("a,a\n1,2\n")); err == nil {
		t.Error("duplicate header should error")
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	rel := paperRelation(t)
	path := t.TempDir() + "/rel.csv"
	if err := rel.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != rel.NumRows() {
		t.Fatal("file round trip changed row count")
	}
	if _, err := ReadCSVFile(path + ".missing"); err == nil {
		t.Error("missing file should error")
	}
}

func TestProject(t *testing.T) {
	rel := paperRelation(t)
	proj, err := rel.Project("City", "Team")
	if err != nil {
		t.Fatal(err)
	}
	if proj.Schema().Arity() != 2 {
		t.Fatalf("projected arity = %d", proj.Schema().Arity())
	}
	if proj.NumRows() != rel.NumRows() {
		t.Fatalf("projected rows = %d", proj.NumRows())
	}
	// Order follows the requested names, not the source schema.
	if proj.Value(0, 0) != "L.A." || proj.Value(0, 1) != "Lakers" {
		t.Fatalf("projection wrong: %v %v", proj.Value(0, 0), proj.Value(0, 1))
	}
	// Deep copy: mutating the projection leaves the source intact.
	proj.SetValue(0, 0, "X")
	if rel.Value(0, 2) != "L.A." {
		t.Fatal("projection shares storage with source")
	}
}

func TestProjectErrors(t *testing.T) {
	rel := paperRelation(t)
	if _, err := rel.Project("Team", "Nope"); err == nil {
		t.Error("unknown attribute should error")
	}
	if _, err := rel.Project(); err == nil {
		t.Error("empty projection should error")
	}
	if _, err := rel.Project("Team", "Team"); err == nil {
		t.Error("duplicate attributes should error")
	}
}
