package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
)

// ReadCSV parses a relation from CSV with a header row naming the
// attributes. Every record must have the header's arity; ragged rows are
// an error rather than silently padded, because a shifted row would
// corrupt every FD statistic downstream.
func ReadCSV(r io.Reader) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validate arity ourselves for a better error
	header, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("dataset: empty CSV input")
	}
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	schema, err := NewSchema(header...)
	if err != nil {
		return nil, err
	}
	rel := New(schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV line %d: %w", line, err)
		}
		if len(rec) != schema.Arity() {
			return nil, fmt.Errorf("dataset: CSV line %d has %d fields, want %d", line, len(rec), schema.Arity())
		}
		rel.MustAppend(Tuple(rec))
	}
	return rel, nil
}

// ReadCSVFile opens and parses a CSV file.
func ReadCSVFile(path string) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return ReadCSV(f)
}

// WriteCSV emits the relation as CSV with a header row.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.schema.names); err != nil {
		return fmt.Errorf("dataset: writing CSV header: %w", err)
	}
	for i, t := range r.rows {
		if err := cw.Write(t); err != nil {
			return fmt.Errorf("dataset: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("dataset: flushing CSV: %w", err)
	}
	return nil
}

// WriteCSVFile writes the relation to a file, creating or truncating it.
func (r *Relation) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	if err := r.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
