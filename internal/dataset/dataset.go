// Package dataset implements the in-memory relational substrate the
// exploratory-training framework operates on: schemas, relations,
// tuple projection and comparison, CSV interchange, deterministic
// sampling, and the train/test splitting used by the evaluation
// (§C.1 holds out 30% of every dataset for F1 measurement).
//
// Functional dependencies only ever compare cell values for equality, so
// cells are stored as strings; numeric data keeps its textual form. This
// matches how FD discovery systems (TANE, CORDS) treat relations.
//
// Alongside the string cells every relation maintains a dictionary
// encoding: each column interns its values to dense int32 codes
// (first-seen order) kept in sync through Append, SetValue, Subset,
// Clone and Project. Two cells of a column are equal iff their codes
// are equal, so the FD hot paths (partitioning, pair classification,
// minority detection) run on integer compares and counting arrays
// instead of string concatenation and string-keyed maps. Mutations bump
// a version counter that downstream caches (fd.PLICache) use for
// invalidation.
package dataset

import (
	"fmt"
	"strings"

	"exptrain/internal/stats"
)

// Schema is an ordered list of attribute names with O(1) name→position
// lookup. Attribute positions are stable for the lifetime of a relation;
// the FD machinery identifies attributes by position and renders them by
// name.
type Schema struct {
	names []string
	index map[string]int
}

// NewSchema builds a schema from attribute names. It returns an error if
// names is empty, contains an empty name, or contains duplicates.
func NewSchema(names ...string) (*Schema, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("dataset: schema needs at least one attribute")
	}
	s := &Schema{
		names: append([]string(nil), names...),
		index: make(map[string]int, len(names)),
	}
	for i, n := range names {
		if n == "" {
			return nil, fmt.Errorf("dataset: empty attribute name at position %d", i)
		}
		if _, dup := s.index[n]; dup {
			return nil, fmt.Errorf("dataset: duplicate attribute %q", n)
		}
		s.index[n] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for statically valid
// schemas (tests, generators).
func MustSchema(names ...string) *Schema {
	s, err := NewSchema(names...)
	if err != nil {
		panic(err)
	}
	return s
}

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.names) }

// Names returns a copy of the attribute names in schema order.
func (s *Schema) Names() []string { return append([]string(nil), s.names...) }

// Name returns the attribute name at position i.
func (s *Schema) Name(i int) string { return s.names[i] }

// Index returns the position of the named attribute and whether it
// exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// MustIndex is Index that panics when the attribute is unknown.
func (s *Schema) MustIndex(name string) int {
	i, ok := s.index[name]
	if !ok {
		panic(fmt.Sprintf("dataset: unknown attribute %q", name))
	}
	return i
}

// Equal reports whether two schemas have identical attribute lists.
func (s *Schema) Equal(o *Schema) bool {
	if s.Arity() != o.Arity() {
		return false
	}
	for i, n := range s.names {
		if o.names[i] != n {
			return false
		}
	}
	return true
}

// Tuple is one row; len(Tuple) equals the schema arity.
type Tuple []string

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// column is the dictionary encoding of one attribute: codes[i] is the
// dense int32 code of rows[i]'s value, vals decodes codes back to
// strings, and index interns new values. Codes are assigned in
// first-seen order and are local to one relation.
type column struct {
	index map[string]int32
	vals  []string
	codes []int32
}

func newColumn() *column {
	return &column{index: make(map[string]int32)}
}

// intern returns the code for v, assigning the next dense code on first
// sight.
func (c *column) intern(v string) int32 {
	if code, ok := c.index[v]; ok {
		return code
	}
	code := int32(len(c.vals))
	c.index[v] = code
	c.vals = append(c.vals, v)
	return code
}

func (c *column) clone() *column {
	out := &column{
		index: make(map[string]int32, len(c.index)),
		vals:  append([]string(nil), c.vals...),
		codes: append([]int32(nil), c.codes...),
	}
	for v, code := range c.index {
		out.index[v] = code
	}
	return out
}

// CellDelta records one SetValue as a dictionary-code transition: cell
// (Row, Col) went from code Old to code New at mutation Version. Codes
// are the relation's own dictionary codes; because dictionaries only
// grow, Old remains decodable through DictValue even after the cell
// moved on. Old == New is possible (a SetValue writing the value
// already present still bumps the version) and carries no state change.
type CellDelta struct {
	// Version is the relation version this delta produced.
	Version uint64
	// Row and Col locate the mutated cell.
	Row, Col int
	// Old and New are the cell's dictionary codes before and after.
	Old, New int32
}

// maxJournal bounds the delta journal. When it overflows, the oldest
// half is dropped; consumers whose snapshot predates the window fall
// back to a full rebuild via DeltasSince's ok=false.
const maxJournal = 4096

// Relation is a schema plus rows. Rows are identified by their index,
// which the game, sampling, and error-generation layers use as stable
// tuple IDs.
type Relation struct {
	schema *Schema
	rows   []Tuple
	cols   []*column
	// version counts mutations (Append/SetValue); partition caches use
	// it to detect staleness.
	version uint64
	// journal holds the per-cell deltas for versions
	// (journalStart, journalStart+len(journal)]; journal[i].Version ==
	// journalStart+i+1. Append is a bulk mutation the delta protocol
	// cannot express, so it resets the journal (raising the barrier);
	// SetValue appends one entry.
	journal      []CellDelta
	journalStart uint64
}

// New returns an empty relation over the given schema.
func New(schema *Schema) *Relation {
	r := &Relation{schema: schema, cols: make([]*column, schema.Arity())}
	for j := range r.cols {
		r.cols[j] = newColumn()
	}
	return r
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// NumRows returns the number of tuples.
func (r *Relation) NumRows() int { return len(r.rows) }

// Append adds a tuple, validating its arity.
func (r *Relation) Append(t Tuple) error {
	if len(t) != r.schema.Arity() {
		return fmt.Errorf("dataset: tuple arity %d does not match schema arity %d", len(t), r.schema.Arity())
	}
	r.rows = append(r.rows, t)
	for j, v := range t {
		c := r.cols[j]
		c.codes = append(c.codes, c.intern(v))
	}
	r.version++
	// A row addition is not representable as cell deltas; raise the
	// journal barrier so delta consumers rebuild from scratch.
	r.journal = r.journal[:0]
	r.journalStart = r.version
	return nil
}

// MustAppend is Append that panics on error.
func (r *Relation) MustAppend(t Tuple) {
	if err := r.Append(t); err != nil {
		panic(err)
	}
}

// Row returns the tuple at index i. The returned slice is the live row;
// it must be treated as read-only — writes must go through SetValue so
// the dictionary encoding stays in sync (Clone the tuple to scribble on
// it).
func (r *Relation) Row(i int) Tuple { return r.rows[i] }

// Value returns the cell at row i, attribute position j.
func (r *Relation) Value(i, j int) string { return r.rows[i][j] }

// SetValue overwrites one cell; used by the error generator and the
// revision path. It is the only sanctioned cell-mutation path: it keeps
// the dictionary codes in sync, bumps the relation version, and records
// a CellDelta so downstream caches (fd.PLICache, fd.Tracker, the belief
// violation memo) can catch up incrementally instead of rebuilding.
func (r *Relation) SetValue(i, j int, v string) {
	c := r.cols[j]
	old := c.codes[i]
	r.rows[i][j] = v
	nc := c.intern(v)
	c.codes[i] = nc
	r.version++
	if len(r.journal) >= maxJournal {
		half := len(r.journal) / 2
		n := copy(r.journal, r.journal[half:])
		r.journal = r.journal[:n]
		r.journalStart += uint64(half)
	}
	r.journal = append(r.journal, CellDelta{Version: r.version, Row: i, Col: j, Old: old, New: nc})
}

// Code returns the dictionary code of the cell at row i, attribute
// position j. Codes are dense, relation-local, and equal iff the string
// values are equal.
func (r *Relation) Code(i, j int) int32 { return r.cols[j].codes[i] }

// ColumnCodes returns the live code slice of attribute j, indexed by
// row. It is the hot-path view the partition machinery walks; callers
// must treat it as read-only and must not hold it across mutations.
func (r *Relation) ColumnCodes(j int) []int32 { return r.cols[j].codes }

// DictLen returns the number of distinct values interned for attribute
// j; valid codes are [0, DictLen).
func (r *Relation) DictLen(j int) int { return len(r.cols[j].vals) }

// DictValue decodes a code of attribute j back to its string value.
func (r *Relation) DictValue(j int, code int32) string { return r.cols[j].vals[code] }

// Version returns the mutation counter, incremented by every Append and
// SetValue. Caches key their validity on it.
func (r *Relation) Version() uint64 { return r.version }

// DeltasSince returns the cell deltas recorded after version v, in
// mutation order, and ok=true when the journal covers the whole span
// (v, Version]. ok=false means the span is not reconstructible — v
// predates the journal window, a bulk mutation (Append) intervened, or
// v is from a different history — and the caller must rebuild from the
// current state. The returned slice aliases the live journal: consume
// it before the next mutation and do not retain it.
func (r *Relation) DeltasSince(v uint64) ([]CellDelta, bool) {
	if v == r.version {
		return nil, true
	}
	if v < r.journalStart || v > r.version {
		return nil, false
	}
	return r.journal[v-r.journalStart:], true
}

// Clone returns a deep copy sharing the (immutable) schema. The clone's
// dictionaries are copied too, so the two relations can diverge (and be
// mutated from different goroutines) independently.
func (r *Relation) Clone() *Relation {
	c := &Relation{schema: r.schema, rows: make([]Tuple, len(r.rows)), cols: make([]*column, len(r.cols))}
	for i, t := range r.rows {
		c.rows[i] = t.Clone()
	}
	for j, col := range r.cols {
		c.cols[j] = col.clone()
	}
	c.version = r.version
	// The clone starts a fresh delta history at its current version:
	// caches attach to a relation by pointer identity, so deltas recorded
	// on the original are never replayed against the clone.
	c.journalStart = c.version
	return c
}

// ProjectKey returns the concatenation of the row's values at the given
// attribute positions, suitable as a map key for grouping rows by an
// attribute-set value (the core operation behind g₁ computation).
// A unit separator keeps ("ab","c") distinct from ("a","bc").
func (r *Relation) ProjectKey(row int, attrs []int) string {
	var b strings.Builder
	for k, a := range attrs {
		if k > 0 {
			b.WriteByte(0x1f)
		}
		b.WriteString(r.rows[row][a])
	}
	return b.String()
}

// ProjectKeyWith is ProjectKey with the cell reads indirected through
// value, producing keys in the same format (same separator). Incremental
// maintainers use it to rebuild the grouping key a row had at an earlier
// version by overlaying journal-recorded old codes on the current state.
func (r *Relation) ProjectKeyWith(row int, attrs []int, value func(row, attr int) string) string {
	var b strings.Builder
	for k, a := range attrs {
		if k > 0 {
			b.WriteByte(0x1f)
		}
		b.WriteString(value(row, a))
	}
	return b.String()
}

// EqualOn reports whether rows i and j agree on every attribute position
// in attrs. It compares dictionary codes, not strings, so the per-pair
// FD classification the belief layer performs is a handful of int32
// compares.
func (r *Relation) EqualOn(i, j int, attrs []int) bool {
	for _, a := range attrs {
		codes := r.cols[a].codes
		if codes[i] != codes[j] {
			return false
		}
	}
	return true
}

// Project returns a new relation over the named attributes (in the
// given order), copying every row's projection. It errors on unknown
// attribute names. The user-study scenarios present participants with a
// projection of the full dataset (Table 2 lists per-scenario attribute
// subsets).
func (r *Relation) Project(names ...string) (*Relation, error) {
	schema, err := NewSchema(names...)
	if err != nil {
		return nil, err
	}
	attrs := make([]int, len(names))
	for i, n := range names {
		j, ok := r.schema.Index(n)
		if !ok {
			return nil, fmt.Errorf("dataset: projecting unknown attribute %q", n)
		}
		attrs[i] = j
	}
	out := New(schema)
	for i := 0; i < r.NumRows(); i++ {
		t := make(Tuple, len(attrs))
		for k, a := range attrs {
			t[k] = r.rows[i][a]
		}
		out.MustAppend(t)
	}
	return out, nil
}

// Subset returns a new relation holding copies of the rows at the given
// indices, in the given order. The subset re-interns its values, so its
// codes are dense over the rows it actually holds.
func (r *Relation) Subset(rowIdx []int) *Relation {
	sub := New(r.schema)
	sub.rows = make([]Tuple, 0, len(rowIdx))
	for _, i := range rowIdx {
		sub.MustAppend(r.rows[i].Clone())
	}
	return sub
}

// Sample returns k distinct row indices drawn uniformly without
// replacement.
func (r *Relation) Sample(rng *stats.RNG, k int) []int {
	if k > r.NumRows() {
		k = r.NumRows()
	}
	return rng.SampleWithoutReplacement(r.NumRows(), k)
}

// Split partitions the row indices into a train set of the given
// fraction and a test set with the remainder, shuffled by rng. The paper
// separates 30% of each dataset as the test set (§C.1), i.e.
// Split(rng, 0.7).
func (r *Relation) Split(rng *stats.RNG, trainFrac float64) (train, test []int) {
	if trainFrac < 0 {
		trainFrac = 0
	}
	if trainFrac > 1 {
		trainFrac = 1
	}
	perm := rng.Perm(r.NumRows())
	cut := int(float64(r.NumRows()) * trainFrac)
	return perm[:cut], perm[cut:]
}

// Pair identifies an unordered pair of distinct tuples by row index with
// A < B. FD violations are defined over tuple pairs, so pairs are the
// unit the samplers present and the trainer labels.
type Pair struct {
	A, B int
}

// NewPair returns the canonical (sorted) form of the pair {a, b}. It
// panics if a == b: a violation needs two distinct tuples.
func NewPair(a, b int) Pair {
	if a == b {
		panic("dataset: pair of identical rows")
	}
	if a > b {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// String renders the pair for logs and error messages.
func (p Pair) String() string { return fmt.Sprintf("(%d,%d)", p.A, p.B) }

// PairsAmong lists every pair of distinct rows in the sample, in the
// slice's order (rows[i] is paired with each later rows[j]). Rows must
// be distinct; duplicate rows would panic in NewPair.
func PairsAmong(rows []int) []Pair {
	if len(rows) < 2 {
		return nil
	}
	out := make([]Pair, 0, len(rows)*(len(rows)-1)/2)
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			out = append(out, NewPair(rows[i], rows[j]))
		}
	}
	return out
}

// AllPairs enumerates every unordered pair over n rows, in lexicographic
// order. Quadratic; intended for the small relations in tests and for
// exact g₁ computation on modest data.
func AllPairs(n int) []Pair {
	if n < 2 {
		return nil
	}
	out := make([]Pair, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out = append(out, Pair{A: i, B: j})
		}
	}
	return out
}
