// Package dataset implements the in-memory relational substrate the
// exploratory-training framework operates on: schemas, relations,
// tuple projection and comparison, CSV interchange, deterministic
// sampling, and the train/test splitting used by the evaluation
// (§C.1 holds out 30% of every dataset for F1 measurement).
//
// Functional dependencies only ever compare cell values for equality, so
// cells are stored as strings; numeric data keeps its textual form. This
// matches how FD discovery systems (TANE, CORDS) treat relations.
package dataset

import (
	"fmt"
	"strings"

	"exptrain/internal/stats"
)

// Schema is an ordered list of attribute names with O(1) name→position
// lookup. Attribute positions are stable for the lifetime of a relation;
// the FD machinery identifies attributes by position and renders them by
// name.
type Schema struct {
	names []string
	index map[string]int
}

// NewSchema builds a schema from attribute names. It returns an error if
// names is empty, contains an empty name, or contains duplicates.
func NewSchema(names ...string) (*Schema, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("dataset: schema needs at least one attribute")
	}
	s := &Schema{
		names: append([]string(nil), names...),
		index: make(map[string]int, len(names)),
	}
	for i, n := range names {
		if n == "" {
			return nil, fmt.Errorf("dataset: empty attribute name at position %d", i)
		}
		if _, dup := s.index[n]; dup {
			return nil, fmt.Errorf("dataset: duplicate attribute %q", n)
		}
		s.index[n] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for statically valid
// schemas (tests, generators).
func MustSchema(names ...string) *Schema {
	s, err := NewSchema(names...)
	if err != nil {
		panic(err)
	}
	return s
}

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.names) }

// Names returns a copy of the attribute names in schema order.
func (s *Schema) Names() []string { return append([]string(nil), s.names...) }

// Name returns the attribute name at position i.
func (s *Schema) Name(i int) string { return s.names[i] }

// Index returns the position of the named attribute and whether it
// exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// MustIndex is Index that panics when the attribute is unknown.
func (s *Schema) MustIndex(name string) int {
	i, ok := s.index[name]
	if !ok {
		panic(fmt.Sprintf("dataset: unknown attribute %q", name))
	}
	return i
}

// Equal reports whether two schemas have identical attribute lists.
func (s *Schema) Equal(o *Schema) bool {
	if s.Arity() != o.Arity() {
		return false
	}
	for i, n := range s.names {
		if o.names[i] != n {
			return false
		}
	}
	return true
}

// Tuple is one row; len(Tuple) equals the schema arity.
type Tuple []string

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Relation is a schema plus rows. Rows are identified by their index,
// which the game, sampling, and error-generation layers use as stable
// tuple IDs.
type Relation struct {
	schema *Schema
	rows   []Tuple
}

// New returns an empty relation over the given schema.
func New(schema *Schema) *Relation {
	return &Relation{schema: schema}
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// NumRows returns the number of tuples.
func (r *Relation) NumRows() int { return len(r.rows) }

// Append adds a tuple, validating its arity.
func (r *Relation) Append(t Tuple) error {
	if len(t) != r.schema.Arity() {
		return fmt.Errorf("dataset: tuple arity %d does not match schema arity %d", len(t), r.schema.Arity())
	}
	r.rows = append(r.rows, t)
	return nil
}

// MustAppend is Append that panics on error.
func (r *Relation) MustAppend(t Tuple) {
	if err := r.Append(t); err != nil {
		panic(err)
	}
}

// Row returns the tuple at index i. The returned slice is the live row;
// callers that mutate it (the error generator does, deliberately) own
// the consequences.
func (r *Relation) Row(i int) Tuple { return r.rows[i] }

// Value returns the cell at row i, attribute position j.
func (r *Relation) Value(i, j int) string { return r.rows[i][j] }

// SetValue overwrites one cell; used by the error generator.
func (r *Relation) SetValue(i, j int, v string) { r.rows[i][j] = v }

// Clone returns a deep copy sharing the (immutable) schema.
func (r *Relation) Clone() *Relation {
	c := &Relation{schema: r.schema, rows: make([]Tuple, len(r.rows))}
	for i, t := range r.rows {
		c.rows[i] = t.Clone()
	}
	return c
}

// ProjectKey returns the concatenation of the row's values at the given
// attribute positions, suitable as a map key for grouping rows by an
// attribute-set value (the core operation behind g₁ computation).
// A unit separator keeps ("ab","c") distinct from ("a","bc").
func (r *Relation) ProjectKey(row int, attrs []int) string {
	var b strings.Builder
	for k, a := range attrs {
		if k > 0 {
			b.WriteByte(0x1f)
		}
		b.WriteString(r.rows[row][a])
	}
	return b.String()
}

// EqualOn reports whether rows i and j agree on every attribute position
// in attrs.
func (r *Relation) EqualOn(i, j int, attrs []int) bool {
	for _, a := range attrs {
		if r.rows[i][a] != r.rows[j][a] {
			return false
		}
	}
	return true
}

// Project returns a new relation over the named attributes (in the
// given order), copying every row's projection. It errors on unknown
// attribute names. The user-study scenarios present participants with a
// projection of the full dataset (Table 2 lists per-scenario attribute
// subsets).
func (r *Relation) Project(names ...string) (*Relation, error) {
	schema, err := NewSchema(names...)
	if err != nil {
		return nil, err
	}
	attrs := make([]int, len(names))
	for i, n := range names {
		j, ok := r.schema.Index(n)
		if !ok {
			return nil, fmt.Errorf("dataset: projecting unknown attribute %q", n)
		}
		attrs[i] = j
	}
	out := New(schema)
	for i := 0; i < r.NumRows(); i++ {
		t := make(Tuple, len(attrs))
		for k, a := range attrs {
			t[k] = r.rows[i][a]
		}
		out.rows = append(out.rows, t)
	}
	return out, nil
}

// Subset returns a new relation holding copies of the rows at the given
// indices, in the given order.
func (r *Relation) Subset(rowIdx []int) *Relation {
	sub := &Relation{schema: r.schema, rows: make([]Tuple, len(rowIdx))}
	for k, i := range rowIdx {
		sub.rows[k] = r.rows[i].Clone()
	}
	return sub
}

// Sample returns k distinct row indices drawn uniformly without
// replacement.
func (r *Relation) Sample(rng *stats.RNG, k int) []int {
	if k > r.NumRows() {
		k = r.NumRows()
	}
	return rng.SampleWithoutReplacement(r.NumRows(), k)
}

// Split partitions the row indices into a train set of the given
// fraction and a test set with the remainder, shuffled by rng. The paper
// separates 30% of each dataset as the test set (§C.1), i.e.
// Split(rng, 0.7).
func (r *Relation) Split(rng *stats.RNG, trainFrac float64) (train, test []int) {
	if trainFrac < 0 {
		trainFrac = 0
	}
	if trainFrac > 1 {
		trainFrac = 1
	}
	perm := rng.Perm(r.NumRows())
	cut := int(float64(r.NumRows()) * trainFrac)
	return perm[:cut], perm[cut:]
}

// Pair identifies an unordered pair of distinct tuples by row index with
// A < B. FD violations are defined over tuple pairs, so pairs are the
// unit the samplers present and the trainer labels.
type Pair struct {
	A, B int
}

// NewPair returns the canonical (sorted) form of the pair {a, b}. It
// panics if a == b: a violation needs two distinct tuples.
func NewPair(a, b int) Pair {
	if a == b {
		panic("dataset: pair of identical rows")
	}
	if a > b {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// String renders the pair for logs and error messages.
func (p Pair) String() string { return fmt.Sprintf("(%d,%d)", p.A, p.B) }

// AllPairs enumerates every unordered pair over n rows, in lexicographic
// order. Quadratic; intended for the small relations in tests and for
// exact g₁ computation on modest data.
func AllPairs(n int) []Pair {
	if n < 2 {
		return nil
	}
	out := make([]Pair, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out = append(out, Pair{A: i, B: j})
		}
	}
	return out
}
