package dataset

import (
	"fmt"
	"testing"
)

func deltaRelation(t *testing.T) *Relation {
	t.Helper()
	rel := New(MustSchema("a", "b"))
	rel.MustAppend(Tuple{"x", "1"})
	rel.MustAppend(Tuple{"y", "2"})
	rel.MustAppend(Tuple{"x", "2"})
	return rel
}

// TestDeltaJournalRecordsEdits pins the journal protocol: SetValue
// appends one delta carrying the cell and its old/new dictionary codes,
// DeltasSince returns exactly the suffix after the given version, and
// asking at the current version yields an empty, covered answer.
func TestDeltaJournalRecordsEdits(t *testing.T) {
	rel := deltaRelation(t)
	v0 := rel.Version()
	if ds, ok := rel.DeltasSince(v0); !ok || len(ds) != 0 {
		t.Fatalf("DeltasSince(current) = %v, %v; want empty, true", ds, ok)
	}
	oldCode := rel.Code(1, 0)
	rel.SetValue(1, 0, "x") // existing dictionary value
	rel.SetValue(2, 1, "3") // fresh dictionary value
	ds, ok := rel.DeltasSince(v0)
	if !ok || len(ds) != 2 {
		t.Fatalf("DeltasSince(v0) = %v, %v; want 2 deltas, true", ds, ok)
	}
	d := ds[0]
	if d.Row != 1 || d.Col != 0 || d.Old != oldCode || d.New != rel.Code(0, 0) {
		t.Fatalf("first delta = %+v; want row 1 col 0, old %d, new %d", d, oldCode, rel.Code(0, 0))
	}
	if d.Version != v0+1 {
		t.Fatalf("first delta version = %d, want %d", d.Version, v0+1)
	}
	if got := rel.DictValue(0, d.Old); got != "y" {
		t.Fatalf("old code decodes to %q, want %q (dictionaries must not shrink)", got, "y")
	}
	d = ds[1]
	if d.Row != 2 || d.Col != 1 || rel.DictValue(1, d.New) != "3" {
		t.Fatalf("second delta = %+v; want row 2 col 1 with New decoding to %q", d, "3")
	}
	// Mid-journal suffix.
	if ds, ok := rel.DeltasSince(v0 + 1); !ok || len(ds) != 1 || ds[0].Row != 2 {
		t.Fatalf("DeltasSince(v0+1) = %v, %v; want the second delta only", ds, ok)
	}
	// A future version is not covered.
	if _, ok := rel.DeltasSince(rel.Version() + 1); ok {
		t.Fatal("DeltasSince(future) reported covered")
	}
}

// TestDeltaJournalAppendBarrier pins that Append — a bulk mutation with
// no cell-level representation — truncates coverage: versions at or
// after the append are covered, versions before it are not.
func TestDeltaJournalAppendBarrier(t *testing.T) {
	rel := deltaRelation(t)
	v0 := rel.Version()
	rel.SetValue(0, 0, "z")
	rel.MustAppend(Tuple{"w", "9"})
	vA := rel.Version()
	if _, ok := rel.DeltasSince(v0); ok {
		t.Fatal("DeltasSince(pre-append) reported covered across an Append")
	}
	rel.SetValue(3, 1, "8")
	if ds, ok := rel.DeltasSince(vA); !ok || len(ds) != 1 || ds[0].Row != 3 {
		t.Fatalf("DeltasSince(post-append) = %v, %v; want the one post-append delta", ds, ok)
	}
}

// TestDeltaJournalOverflow drives more edits than the bounded journal
// retains: stale versions lose coverage, recent ones keep it.
func TestDeltaJournalOverflow(t *testing.T) {
	rel := deltaRelation(t)
	v0 := rel.Version()
	for i := 0; i < 10000; i++ {
		rel.SetValue(i%3, 0, fmt.Sprintf("v%d", i%7))
	}
	if _, ok := rel.DeltasSince(v0); ok {
		t.Fatal("DeltasSince(v0) still covered after 10k edits (journal unbounded?)")
	}
	vRecent := rel.Version()
	rel.SetValue(0, 1, "tail")
	if ds, ok := rel.DeltasSince(vRecent); !ok || len(ds) != 1 {
		t.Fatalf("DeltasSince(recent) = %v, %v; want 1 delta, true", ds, ok)
	}
}

// TestDeltaJournalCloneReset pins that a clone starts with an empty
// journal anchored at its own version: pre-clone versions are not
// covered (the clone never saw those deltas), post-clone edits are.
func TestDeltaJournalCloneReset(t *testing.T) {
	rel := deltaRelation(t)
	v0 := rel.Version()
	rel.SetValue(0, 0, "q")
	c := rel.Clone()
	if _, ok := c.DeltasSince(v0); ok {
		t.Fatal("clone reported coverage of pre-clone versions")
	}
	vc := c.Version()
	c.SetValue(1, 1, "7")
	if ds, ok := c.DeltasSince(vc); !ok || len(ds) != 1 {
		t.Fatalf("clone DeltasSince = %v, %v; want 1 delta, true", ds, ok)
	}
	// The original's journal is untouched by the clone's edits.
	if ds, ok := rel.DeltasSince(v0); !ok || len(ds) != 1 {
		t.Fatalf("original DeltasSince(v0) = %v, %v; want 1 delta, true", ds, ok)
	}
}
