package service

import (
	"context"
	"sync/atomic"

	"exptrain/internal/belief"
	"exptrain/internal/game"
	"exptrain/internal/persist"
)

// walRecorder is the per-session observer behind WAL-backed
// durability: it folds the engine's event stream into persist.RoundDelta
// records — one per scored round, carrying the round's interaction plus
// the learner's post-round belief and sampler RNG state — which the
// shard then group-commits through the store's RoundAppender
// (flushWal). It is installed alongside roundStats via MultiObserver
// only when the store supports appends.
//
// Like roundStats it has no internal locking: the engine serializes
// events per session and every take/restore/clear happens under the
// entry lock. The one exception is n, an atomic mirror of the pending
// count so health reporting can read a shard's un-appended backlog
// without touching entry locks.
type walRecorder struct {
	game.NopObserver
	// id is the session id stamped into every recorded delta. Set once
	// when the entry is built, before any round flows; it must not
	// change afterwards — a quorum append can return at W acks while a
	// straggler replica still reads the delta, so deltas are immutable
	// once handed to an append.
	id string
	// eval mirrors the session spec: deltas carry detection scores only
	// when the session scores them (matching Snapshot's serialization).
	eval bool
	// rng reads the session's sampler RNG position; bound after the
	// session is built (the recorder is constructed first, as the
	// observer must exist before the session).
	rng func() [4]uint64
	// learner is the belief captured at the round's BeliefUpdated,
	// consumed by the following RoundScored.
	learner []persist.BetaJSON
	// pending holds recorded deltas awaiting a durable append, in round
	// order. Deltas survive a failed append (restore) until a full
	// snapshot supersedes them (clear).
	pending []*persist.RoundDelta
	// n mirrors len(pending) for lock-free health reads.
	n atomic.Int64
}

// bind points the recorder at its session's RNG, once the session
// exists.
func (w *walRecorder) bind(sess *game.Session) {
	w.rng = sess.RNGState
}

// BeliefUpdated captures the learner's post-round belief; the engine
// emits it before the round's RoundScored.
func (w *walRecorder) BeliefUpdated(t int, b *belief.Belief) {
	w.learner = persist.BeliefToJSON(b)
}

// RoundScored assembles the round's delta.
func (w *walRecorder) RoundScored(t int, rec game.IterationRecord) {
	r := persist.Round{
		Labeled:   rec.Labeled,
		Revisions: rec.Revisions,
		MAE:       rec.MAE,
		Payoff:    rec.TrainerPayoff,
	}
	if w.eval {
		d := rec.Detection
		r.Detection = &d
	}
	delta := &persist.RoundDelta{
		Session:     w.id,
		Round:       t,
		Interaction: persist.FromRound(r),
		Learner:     w.learner,
	}
	if w.rng != nil {
		st := w.rng()
		delta.LearnerRNG = append([]uint64(nil), st[:]...)
	}
	w.pending = append(w.pending, delta)
	w.n.Store(int64(len(w.pending)))
}

// take removes and returns the pending deltas for an append attempt.
func (w *walRecorder) take() []*persist.RoundDelta {
	p := w.pending
	w.pending = nil
	w.n.Store(0)
	return p
}

// restore re-queues deltas after a failed append, ahead of anything
// recorded since.
func (w *walRecorder) restore(deltas []*persist.RoundDelta) {
	w.pending = append(deltas, w.pending...)
	w.n.Store(int64(len(w.pending)))
}

// clear drops the pending deltas — a full snapshot just landed, which
// carries everything they do.
func (w *walRecorder) clear() {
	w.pending = nil
	w.n.Store(0)
}

// backlog is the lock-free pending count, for health reporting.
func (w *walRecorder) backlog() int {
	return int(w.n.Load())
}

// flushWal durably appends the entry's recorded round deltas through
// the store's group committer — the WAL-era durability unit: a submit
// acks to its caller only after its delta's group commit fsynced
// (quorum-fsynced under replication). Caller holds e.mu.
//
// Failure follows the degraded-mode playbook: the deltas are restored
// for the next flush, the session is marked degraded, and serving
// continues from memory — nothing submitted is lost while the process
// lives, and any later full snapshot covers the backlog. A successful
// append heals the mark only for WAL-based entries (ones whose base
// snapshot durably landed): appended deltas without a base snapshot
// are not recoverable on their own.
func (sh *shard) flushWal(ctx context.Context, e *entry) error {
	if e.wal == nil || sh.appender == nil {
		return nil
	}
	deltas := e.wal.take()
	if len(deltas) == 0 {
		return nil
	}
	// Deltas carry their session id from record time and are never
	// mutated here: a quorum append can return while a straggler replica
	// still reads them.
	if err := sh.storeRetry(ctx, "appending rounds for "+e.id, func(ctx context.Context) error {
		return sh.appender.AppendRounds(ctx, deltas)
	}); err != nil {
		e.wal.restore(deltas)
		sh.setDegraded(e.id, true)
		return err
	}
	sh.mu.Lock()
	sh.walAppended += uint64(len(deltas))
	sh.mu.Unlock()
	if e.walBased {
		sh.setDegraded(e.id, false)
	}
	return nil
}

// genesis writes the session's base snapshot right after creation, so
// subsequent WAL appends have a snapshot to replay onto. Failure marks
// the session degraded (its rounds will pile up in the recorder until
// a snapshot lands) but does not fail the creation — the same contract
// as every other checkpoint path.
func (sh *shard) genesis(ctx context.Context, e *entry) {
	if e.wal == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.gone {
		return
	}
	snap, err := e.sess.Snapshot()
	if err != nil {
		return // a round is already pending; a later checkpoint catches up
	}
	if err := sh.storeRetry(ctx, "genesis checkpoint "+e.id, func(ctx context.Context) error {
		return sh.store.Put(ctx, e.id, snap)
	}); err != nil {
		sh.setDegraded(e.id, true)
		return
	}
	e.walBased = true
	e.wal.clear() // the snapshot covers every recorded round
	sh.setDegraded(e.id, false)
}

// snapshotLandedLocked records that a full snapshot for the entry
// durably landed: pending deltas are superseded and appends may heal
// the degraded mark from here on. Caller holds e.mu.
func (e *entry) snapshotLandedLocked() {
	if e.wal == nil {
		return
	}
	e.wal.clear()
	e.walBased = true
}
