package service

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

// FuzzServerJSON: hostile request bodies against every JSON-decoding
// route must come back as 4xx (or the occasional 2xx for bodies that
// happen to be valid), never a 5xx and never a panic. The server is the
// trust boundary — persist/game sentinels map to statuses via
// errors.Is, and anything falling through to 500 on client input is a
// bug this fuzzer exists to find.
func FuzzServerJSON(f *testing.F) {
	mgr := NewManager(Options{MaxSessions: 4, IdleTTL: time.Hour})
	srv := NewServer(mgr, ServerOptions{})

	routes := []struct{ method, path string }{
		{"POST", "/v1/sessions"},
		{"POST", "/v1/sessions/fuzz/submit"},
		{"POST", "/v1/sessions/fuzz/next"},
		{"POST", "/v1/sessions/fuzz/snapshot"},
		{"GET", "/v1/sessions/fuzz/rounds"},
		{"GET", "/v1/sessions/fuzz/belief"},
		{"GET", "/v1/sessions"},
		{"DELETE", "/v1/sessions/fuzz"},
	}

	f.Add(uint8(0), []byte(`{"dataset":"OMDB","rows":24,"seed":7,"k":2}`))
	f.Add(uint8(0), []byte(`{"dataset":"nope"}`))
	f.Add(uint8(0), []byte(`{"csv":"a,b\n1,2\n","unknown_field":1}`))
	f.Add(uint8(0), []byte(`{"resume":"missing-snapshot"}`))
	f.Add(uint8(1), []byte(`{"labels":[{"pair":[0,0]}]}`))
	f.Add(uint8(1), []byte(`{"labels":[{"pair":[0,1],"marked":[999]}]}`))
	f.Add(uint8(2), []byte(`not json`))
	f.Add(uint8(3), []byte{0xff, 0x00, 0x7b})
	f.Add(uint8(4), []byte(``))

	f.Fuzz(func(t *testing.T, route uint8, body []byte) {
		r := routes[int(route)%len(routes)]
		if r.method == "POST" && r.path == "/v1/sessions" && expensiveCreate(body) {
			return // resource-exhaustion guard, not a decode concern
		}
		req := httptest.NewRequest(r.method, r.path, bytes.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("%s %s with body %q → %d:\n%s", r.method, r.path, body, rec.Code, rec.Body.Bytes())
		}
		if ct := rec.Header().Get("Content-Type"); rec.Code != 499 && ct != "application/json" {
			t.Fatalf("%s %s → %d with Content-Type %q, want application/json", r.method, r.path, rec.Code, ct)
		}
	})
}

// expensiveCreate reports whether a create body would ask the service
// for real work at fuzz-hostile scale (huge synthetic relations).
// Bounding the fuzz corpus, not the server: relation size is a
// legitimate, operator-controlled cost everywhere but here.
func expensiveCreate(body []byte) bool {
	var probe struct {
		Rows float64 `json:"rows"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		return false // won't decode as a spec either
	}
	return probe.Rows > 512
}
