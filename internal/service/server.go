package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"exptrain/internal/belief"
	"exptrain/internal/game"
	"exptrain/internal/persist"
	"exptrain/internal/sampling"
)

// ServerOptions tunes the HTTP layer.
type ServerOptions struct {
	// RequestTimeout bounds each request's context (default 30s).
	RequestTimeout time.Duration
	// MaxBodyBytes bounds request bodies, CSV uploads included
	// (default 8 MiB).
	MaxBodyBytes int64
}

func (o ServerOptions) withDefaults() ServerOptions {
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 8 << 20
	}
	return o
}

// Server is the HTTP/JSON front of a Manager. It implements
// http.Handler; mount it on any mux or serve it directly.
//
// Routes (all JSON):
//
//	POST   /v1/sessions              create (or resume with "resume")
//	GET    /v1/sessions              list
//	GET    /v1/sessions/{id}         inspect
//	POST   /v1/sessions/{id}/next    present the next round
//	POST   /v1/sessions/{id}/submit  submit the round's labelings
//	GET    /v1/sessions/{id}/rounds  per-round MAE/payoff (and F1 with eval)
//	GET    /v1/sessions/{id}/belief  top hypotheses (?k=10)
//	GET    /v1/sessions/{id}/repairs believed-FD cell repairs (?tau=0.5)
//	POST   /v1/sessions/{id}/snapshot  checkpoint to the store
//	DELETE /v1/sessions/{id}         checkpoint and park
//	GET    /v1/healthz               health: store state, live/parked/
//	                                 degraded counts; 503 when degraded
//	                                 or draining
//
// Store failures surface as 503 + Retry-After with kind
// "store_unavailable"; a draining manager answers 503 with kind
// "shutting_down" — distinct from the capacity 429 "too_many_sessions"
// so clients can tell "fail over" from "shed load".
type Server struct {
	mgr  *Manager
	opts ServerOptions
	mux  *http.ServeMux
}

// NewServer wires the routes.
func NewServer(mgr *Manager, opts ServerOptions) *Server {
	s := &Server{mgr: mgr, opts: opts.withDefaults(), mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	s.mux.HandleFunc("GET /v1/sessions", s.handleList)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleEvict)
	s.mux.HandleFunc("POST /v1/sessions/{id}/next", s.handleNext)
	s.mux.HandleFunc("POST /v1/sessions/{id}/submit", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/sessions/{id}/rounds", s.handleRounds)
	s.mux.HandleFunc("GET /v1/sessions/{id}/belief", s.handleBelief)
	s.mux.HandleFunc("GET /v1/sessions/{id}/repairs", s.handleRepairs)
	s.mux.HandleFunc("POST /v1/sessions/{id}/snapshot", s.handleSnapshot)
	return s
}

// ServeHTTP implements http.Handler: every request runs under the
// configured timeout and body limit.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	r = r.WithContext(ctx)
	if r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	}
	s.mux.ServeHTTP(w, r)
}

// CreateRequest is the POST /v1/sessions body. Resume (an id whose
// snapshot the store holds) restores that checkpoint instead of
// starting fresh; the source fields must then describe the same data.
type CreateRequest struct {
	Dataset string          `json:"dataset,omitempty"`
	Rows    int             `json:"rows,omitempty"`
	CSV     string          `json:"csv,omitempty"`
	Method  sampling.Method `json:"method,omitempty"`
	Gamma   float64         `json:"gamma,omitempty"`
	K       int             `json:"k,omitempty"`
	MaxLHS  int             `json:"max_lhs,omitempty"`
	MaxFDs  int             `json:"max_fds,omitempty"`
	Seed    uint64          `json:"seed,omitempty"`
	Resume  string          `json:"resume,omitempty"`
	// Eval turns on per-round held-out detection scoring; synthetic
	// dataset sources only. Degree is the injected violation degree
	// (default 0.1).
	Eval   bool    `json:"eval,omitempty"`
	Degree float64 `json:"degree,omitempty"`
}

func (req CreateRequest) spec() Spec {
	return Spec{
		Source: Source{
			Dataset: req.Dataset,
			Rows:    req.Rows,
			Seed:    req.Seed,
			CSV:     []byte(req.CSV),
		},
		Method: req.Method,
		Gamma:  req.Gamma,
		K:      req.K,
		MaxLHS: req.MaxLHS,
		MaxFDs: req.MaxFDs,
		Seed:   req.Seed,
		Eval:   req.Eval,
		Degree: req.Degree,
	}
}

// LabelingWire is one annotation on the wire: the pair's row indices,
// the attribute positions marked erroneous, or an abstention.
type LabelingWire = persist.LabelingJSON

// SubmitRequest is the POST /v1/sessions/{id}/submit body.
type SubmitRequest struct {
	Labels []LabelingWire `json:"labels"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
	Kind  string `json:"kind,omitempty"`
}

// httpStatus maps service and protocol sentinels to status codes — the
// errors.Is-able surface is what makes this a switch instead of string
// matching.
func httpStatus(err error) (int, string) {
	switch {
	case errors.Is(err, ErrSessionNotFound), errors.Is(err, persist.ErrNotFound):
		return http.StatusNotFound, "not_found"
	case errors.Is(err, ErrTooManySessions):
		return http.StatusTooManyRequests, "too_many_sessions"
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable, "shutting_down"
	case errors.Is(err, ErrStoreUnavailable):
		// Checked before the context sentinels: an exhausted retry loop
		// may wrap an ambiguous cancellation, and the actionable fact for
		// the client is "the store is sick, retry later".
		return http.StatusServiceUnavailable, "store_unavailable"
	case errors.Is(err, persist.ErrCorrupt):
		return http.StatusInternalServerError, "corrupt_snapshot"
	case errors.Is(err, game.ErrRoundPending):
		return http.StatusConflict, "round_pending"
	case errors.Is(err, game.ErrNoRoundPending):
		return http.StatusConflict, "no_round_pending"
	case errors.Is(err, game.ErrPoolExhausted):
		return http.StatusGone, "pool_exhausted"
	case errors.Is(err, sampling.ErrUnknownMethod), errors.Is(err, persist.ErrBadID):
		return http.StatusBadRequest, "bad_request"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "timeout"
	case errors.Is(err, context.Canceled):
		return 499, "canceled" // nginx's client-closed-request
	default:
		return http.StatusInternalServerError, "internal"
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// retryAfter advises clients when to come back: quickly for a draining
// or store-sick replica (a load balancer will have failed over by
// then), with more patience for capacity pressure (a session must go
// idle before room appears).
func retryAfter(status int) string {
	if status == http.StatusTooManyRequests {
		return "10"
	}
	return "2"
}

func writeErr(w http.ResponseWriter, err error) {
	status, kind := httpStatus(err)
	if status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", retryAfter(status))
	}
	writeJSON(w, status, errorBody{Error: err.Error(), Kind: kind})
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	return nil
}

// handleHealth reports the manager's health. A degraded, draining or
// store-sick manager answers 503 so a load balancer routes around it
// before it loses work; the body always carries the full Health detail
// either way, for operators.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := s.mgr.Health()
	status := http.StatusOK
	if !h.OK {
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", retryAfter(status))
	}
	writeJSON(w, status, h)
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := decodeBody(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error(), Kind: "bad_request"})
		return
	}
	var (
		info Info
		err  error
	)
	if req.Resume != "" {
		info, err = s.mgr.Resume(r.Context(), req.Resume, req.spec())
	} else {
		info, err = s.mgr.Create(r.Context(), req.spec())
	}
	if err != nil {
		// Spec/source validation failures (bad CSV, unknown dataset,
		// malformed snapshot pairing) have no sentinel of their own;
		// they are client input problems, so anything that would
		// otherwise map to a plain 500 here surfaces as 400. Sentinels
		// that deliberately map to 500 (a corrupt snapshot) keep their
		// kind — those are the server's fault, not the client's.
		if status, kind := httpStatus(err); status == http.StatusInternalServerError && kind == "internal" {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error(), Kind: "bad_request"})
			return
		}
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	infos, err := s.mgr.List(r.Context())
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": infos})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	info, err := s.mgr.Get(r.Context(), r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleNext(w http.ResponseWriter, r *http.Request) {
	pairs, err := s.mgr.Next(r.Context(), r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"pairs": pairs})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := decodeBody(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error(), Kind: "bad_request"})
		return
	}
	labeled := make([]belief.Labeling, 0, len(req.Labels))
	for _, lw := range req.Labels {
		l, err := lw.ToLabeling()
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error(), Kind: "bad_request"})
			return
		}
		labeled = append(labeled, l)
	}
	info, err := s.mgr.Submit(r.Context(), r.PathValue("id"), labeled)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleRounds(w http.ResponseWriter, r *http.Request) {
	rounds, err := s.mgr.Rounds(r.Context(), r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"rounds": rounds})
}

func (s *Server) handleBelief(w http.ResponseWriter, r *http.Request) {
	k, _ := strconv.Atoi(r.URL.Query().Get("k"))
	hyps, err := s.mgr.TopBelief(r.Context(), r.PathValue("id"), k)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"hypotheses": hyps})
}

func (s *Server) handleRepairs(w http.ResponseWriter, r *http.Request) {
	tau, _ := strconv.ParseFloat(r.URL.Query().Get("tau"), 64)
	repairs, err := s.mgr.Repairs(r.Context(), r.PathValue("id"), tau)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"repairs": repairs})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	snapID, err := s.mgr.Snapshot(r.Context(), r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"snapshot": snapID})
}

func (s *Server) handleEvict(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.mgr.Evict(r.Context(), id); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"parked": id})
}
