package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"exptrain/internal/belief"
	"exptrain/internal/persist"
	"exptrain/internal/sampling"
)

// ServerOptions tunes the HTTP layer.
type ServerOptions struct {
	// RequestTimeout bounds each request's context (default 30s).
	// Streaming requests (GET /rounds?stream=1) are exempt: the
	// timeout instead bounds each of the stream's internal fetches.
	RequestTimeout time.Duration
	// MaxBodyBytes bounds request bodies, CSV uploads included
	// (default 8 MiB).
	MaxBodyBytes int64
	// StreamHeartbeat is how often an idle SSE stream emits a comment
	// line so intermediaries keep the connection alive (default 15s).
	StreamHeartbeat time.Duration
}

func (o ServerOptions) withDefaults() ServerOptions {
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 8 << 20
	}
	if o.StreamHeartbeat <= 0 {
		o.StreamHeartbeat = 15 * time.Second
	}
	return o
}

// Server is the HTTP/JSON front of a Manager. It implements
// http.Handler; mount it on any mux or serve it directly.
//
// Routes (all JSON; see API.md for the full contract):
//
//	POST   /v1/sessions              create (or resume with "resume")
//	GET    /v1/sessions              list
//	GET    /v1/sessions/{id}         inspect
//	POST   /v1/sessions/{id}/next    present the next round
//	POST   /v1/sessions/{id}/submit  submit the round's labelings
//	                                 (idempotent with "round")
//	POST   /v1/sessions/{id}/submissions        enqueue into the labelpool
//	GET    /v1/sessions/{id}/submissions/{ticket} ticket status
//	GET    /v1/sessions/{id}/rounds  per-round MAE/payoff (and F1 with
//	                                 eval); ?stream=1 upgrades to SSE
//	GET    /v1/sessions/{id}/belief  top hypotheses (?k=10)
//	GET    /v1/sessions/{id}/repairs believed-FD cell repairs (?tau=0.5)
//	POST   /v1/sessions/{id}/snapshot  checkpoint to the store
//	DELETE /v1/sessions/{id}         checkpoint and park
//	GET    /v1/healthz               health: store state, live/parked/
//	                                 degraded counts; 503 when degraded
//	                                 or draining
//
// Every error response is one APIError envelope {kind, message,
// retry_after?}; the kind registry lives in errors.go and is documented
// in API.md.
type Server struct {
	mgr  *Manager
	opts ServerOptions
	mux  *http.ServeMux
}

// NewServer wires the routes.
func NewServer(mgr *Manager, opts ServerOptions) *Server {
	s := &Server{mgr: mgr, opts: opts.withDefaults(), mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	s.mux.HandleFunc("GET /v1/sessions", s.handleList)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleEvict)
	s.mux.HandleFunc("POST /v1/sessions/{id}/next", s.handleNext)
	s.mux.HandleFunc("POST /v1/sessions/{id}/submit", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/sessions/{id}/submissions", s.handleEnqueue)
	s.mux.HandleFunc("GET /v1/sessions/{id}/submissions/{ticket}", s.handleTicket)
	s.mux.HandleFunc("GET /v1/sessions/{id}/rounds", s.handleRounds)
	s.mux.HandleFunc("GET /v1/sessions/{id}/belief", s.handleBelief)
	s.mux.HandleFunc("GET /v1/sessions/{id}/repairs", s.handleRepairs)
	s.mux.HandleFunc("POST /v1/sessions/{id}/snapshot", s.handleSnapshot)
	return s
}

// ServeHTTP implements http.Handler: every request runs under the
// configured timeout and body limit. A streaming request is exempt from
// the timeout — it lives until the client leaves, the manager drains,
// or the session completes — but still bounded per internal fetch.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !isStreamRequest(r) {
		ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	if r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	}
	s.mux.ServeHTTP(w, r)
}

// isStreamRequest reports whether the request asks for an SSE stream.
func isStreamRequest(r *http.Request) bool {
	return r.Method == http.MethodGet && r.URL.Query().Get("stream") != ""
}

// CreateRequest is the POST /v1/sessions body. Resume (an id whose
// snapshot the store holds) restores that checkpoint instead of
// starting fresh; the source fields must then describe the same data.
type CreateRequest struct {
	Dataset string          `json:"dataset,omitempty"`
	Rows    int             `json:"rows,omitempty"`
	CSV     string          `json:"csv,omitempty"`
	Method  sampling.Method `json:"method,omitempty"`
	Gamma   float64         `json:"gamma,omitempty"`
	K       int             `json:"k,omitempty"`
	MaxLHS  int             `json:"max_lhs,omitempty"`
	MaxFDs  int             `json:"max_fds,omitempty"`
	Seed    uint64          `json:"seed,omitempty"`
	Resume  string          `json:"resume,omitempty"`
	// Eval turns on per-round held-out detection scoring; synthetic
	// dataset sources only. Degree is the injected violation degree
	// (default 0.1).
	Eval   bool    `json:"eval,omitempty"`
	Degree float64 `json:"degree,omitempty"`
}

func (req CreateRequest) spec() Spec {
	return Spec{
		Source: Source{
			Dataset: req.Dataset,
			Rows:    req.Rows,
			Seed:    req.Seed,
			CSV:     []byte(req.CSV),
		},
		Method: req.Method,
		Gamma:  req.Gamma,
		K:      req.K,
		MaxLHS: req.MaxLHS,
		MaxFDs: req.MaxFDs,
		Seed:   req.Seed,
		Eval:   req.Eval,
		Degree: req.Degree,
	}
}

// LabelingWire is one annotation on the wire: the pair's row indices,
// the attribute positions marked erroneous, or an abstention.
type LabelingWire = persist.LabelingJSON

// SubmitRequest is the POST /v1/sessions/{id}/submit body. Round, when
// present, makes the request idempotent: it must name the session's
// current round index (Info.Rounds); a request for an already-applied
// round succeeds without re-applying if its labels are an identical
// replay of what that round recorded, and fails with kind
// "round_mismatch" otherwise — so a client that retries after a lost
// response is always safe.
type SubmitRequest struct {
	Round  *int           `json:"round,omitempty"`
	Labels []LabelingWire `json:"labels"`
}

// SubmissionWire is one queued round for the labelpool: the round index
// it targets (the session's submission "nonce") and its labelings.
type SubmissionWire struct {
	Round  int            `json:"round"`
	Labels []LabelingWire `json:"labels,omitempty"`
}

// EnqueueRequest is the POST /v1/sessions/{id}/submissions body: one or
// more rounds to queue in a single request (batching is the point — one
// request can carry a whole window of rounds).
type EnqueueRequest struct {
	Submissions []SubmissionWire `json:"submissions"`
}

// EnqueueResponse returns one ticket per queued submission, in request
// order.
type EnqueueResponse struct {
	Tickets []Ticket `json:"tickets"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError is the single funnel every handler's failure goes through:
// classify into the kind registry, set Retry-After for the backpressure
// kinds, write the one envelope.
func writeError(w http.ResponseWriter, err error) {
	status, e := apiError(err)
	if e.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfter))
	}
	writeJSON(w, status, e)
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest(fmt.Errorf("decoding request: %s", err))
	}
	return nil
}

// handleHealth reports the manager's health. A degraded, draining or
// store-sick manager answers 503 so a load balancer routes around it
// before it loses work; the body always carries the full Health detail
// either way, for operators.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := s.mgr.Health()
	status := http.StatusOK
	if !h.OK {
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(status)))
	}
	writeJSON(w, status, h)
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	var (
		info Info
		err  error
	)
	if req.Resume != "" {
		info, err = s.mgr.Resume(r.Context(), req.Resume, req.spec())
	} else {
		info, err = s.mgr.Create(r.Context(), req.spec())
	}
	if err != nil {
		// Spec/source validation failures (bad CSV, unknown dataset,
		// malformed snapshot pairing) have no sentinel of their own;
		// they are client input problems, so anything that would
		// otherwise map to a plain 500 here surfaces as 400. Sentinels
		// that deliberately map to 500 (a corrupt snapshot) keep their
		// kind — those are the server's fault, not the client's.
		if errorKind(err) == KindInternal {
			err = badRequest(err)
		}
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	infos, err := s.mgr.List(r.Context())
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": infos})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	info, err := s.mgr.Get(r.Context(), r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleNext(w http.ResponseWriter, r *http.Request) {
	pairs, err := s.mgr.Next(r.Context(), r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"pairs": pairs})
}

// decodeLabels converts wire labelings, mapping validation failures to
// bad_request.
func decodeLabels(wire []LabelingWire) ([]belief.Labeling, error) {
	labeled := make([]belief.Labeling, 0, len(wire))
	for _, lw := range wire {
		l, err := lw.ToLabeling()
		if err != nil {
			return nil, badRequest(err)
		}
		labeled = append(labeled, l)
	}
	return labeled, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	labeled, err := decodeLabels(req.Labels)
	if err != nil {
		writeError(w, err)
		return
	}
	round := UncheckedRound
	if req.Round != nil {
		if *req.Round < 0 {
			writeError(w, badRequest(fmt.Errorf("round %d is negative", *req.Round)))
			return
		}
		round = *req.Round
	}
	info, err := s.mgr.Submit(r.Context(), r.PathValue("id"), round, labeled)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleEnqueue(w http.ResponseWriter, r *http.Request) {
	var req EnqueueRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if len(req.Submissions) == 0 {
		writeError(w, badRequest(fmt.Errorf("submissions must not be empty")))
		return
	}
	subs := make([]Submission, 0, len(req.Submissions))
	for _, sw := range req.Submissions {
		if sw.Round < 0 {
			writeError(w, badRequest(fmt.Errorf("round %d is negative", sw.Round)))
			return
		}
		labeled, err := decodeLabels(sw.Labels)
		if err != nil {
			writeError(w, err)
			return
		}
		subs = append(subs, Submission{Round: sw.Round, Labels: labeled})
	}
	tickets, err := s.mgr.EnqueueSubmissions(r.Context(), r.PathValue("id"), subs)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, EnqueueResponse{Tickets: tickets})
}

func (s *Server) handleTicket(w http.ResponseWriter, r *http.Request) {
	tk, err := s.mgr.Ticket(r.Context(), r.PathValue("id"), r.PathValue("ticket"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, tk)
}

func (s *Server) handleRounds(w http.ResponseWriter, r *http.Request) {
	if isStreamRequest(r) {
		s.handleStream(w, r)
		return
	}
	rounds, err := s.mgr.Rounds(r.Context(), r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"rounds": rounds})
}

func (s *Server) handleBelief(w http.ResponseWriter, r *http.Request) {
	k, _ := strconv.Atoi(r.URL.Query().Get("k"))
	hyps, err := s.mgr.TopBelief(r.Context(), r.PathValue("id"), k)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"hypotheses": hyps})
}

func (s *Server) handleRepairs(w http.ResponseWriter, r *http.Request) {
	tau, _ := strconv.ParseFloat(r.URL.Query().Get("tau"), 64)
	repairs, err := s.mgr.Repairs(r.Context(), r.PathValue("id"), tau)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"repairs": repairs})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	snapID, err := s.mgr.Snapshot(r.Context(), r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"snapshot": snapID})
}

func (s *Server) handleEvict(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.mgr.Evict(r.Context(), id); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"parked": id})
}
