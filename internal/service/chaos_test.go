package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"exptrain/internal/belief"
	"exptrain/internal/dataset"
	"exptrain/internal/game"
	"exptrain/internal/persist"
	"exptrain/internal/persist/faulty"
)

// TestChaosFlakyStoreWorkload is the acceptance chaos test: a manager
// whose store fails 30% of all operations (seeded) must complete a
// 64-session concurrent workload — constant park/unpark churn through
// 16 resident slots — with zero lost submitted rounds, and every
// session degraded along the way must recover once the faults clear.
// Run under -race (make chaos); ET_CHAOS=1 deepens the workload.
func TestChaosFlakyStoreWorkload(t *testing.T) {
	const workers = 64
	rounds := 2
	if os.Getenv("ET_CHAOS") != "" {
		rounds = 4
	}
	const chaosSeed = 2026
	ctx := context.Background()
	fs := faulty.Wrap(persist.NewMemStore(), faulty.Config{Seed: chaosSeed, FailRate: 0.3})
	m := NewManager(Options{
		MaxSessions: 16,
		IdleTTL:     time.Minute, // churn comes from capacity + explicit evicts, not TTL
		Store:       fs,
		Retry:       fastRetry(),
		RetrySeed:   chaosSeed,
	})

	// Transient outcomes are the designed behavior under a flaky store:
	// clients retry 503s and 429s, so the workers do too.
	transient := func(err error) bool {
		return errors.Is(err, ErrStoreUnavailable) || errors.Is(err, ErrTooManySessions)
	}
	retry := func(op func() error) error {
		for tries := 0; ; tries++ {
			err := op()
			if err == nil || !transient(err) || tries > 5000 {
				return err
			}
			time.Sleep(200 * time.Microsecond)
		}
	}

	ids := make([]string, workers)
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var info Info
			if err := retry(func() (err error) {
				info, err = m.Create(ctx, testSpec())
				return err
			}); err != nil {
				errCh <- fmt.Errorf("worker %d create: %w", w, err)
				return
			}
			ids[w] = info.ID
			for round := 0; round < rounds; round++ {
				var pairs []PairView
				for {
					err := retry(func() (err error) {
						pairs, err = m.Next(ctx, info.ID)
						return err
					})
					if err != nil {
						errCh <- fmt.Errorf("worker %d round %d next: %w", w, round, err)
						return
					}
					labeled := make([]belief.Labeling, len(pairs))
					for i, p := range pairs {
						labeled[i] = belief.Labeling{Pair: dataset.NewPair(p.A, p.B)}
					}
					err = retry(func() (err error) {
						_, err = m.Submit(ctx, info.ID, UncheckedRound, labeled)
						return err
					})
					if errors.Is(err, game.ErrNoRoundPending) {
						// An eviction between Next and Submit discarded the
						// pending (evidence-free) round; present it again.
						continue
					}
					if err != nil {
						errCh <- fmt.Errorf("worker %d round %d submit: %w", w, round, err)
						return
					}
					break
				}
				// Half the workers force eviction churn through the flaky
				// store. Failure is fine — the session goes degraded and
				// keeps serving; that is the mode under test.
				if w%2 == 0 {
					_ = m.Evict(ctx, info.ID)
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	if ops, injected := fs.Stats(); injected == 0 {
		t.Fatalf("no faults injected over %d store ops; chaos exercised nothing (seed %d)", ops, fs.Seed())
	}

	// Faults clear: every degraded session must checkpoint cleanly on
	// the final drain, and nothing submitted may be missing.
	fs.ClearFaults()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown after faults cleared: %v", err)
	}
	h := m.Health()
	if h.Live != 0 || h.Degraded != 0 || h.Parked != workers {
		t.Fatalf("Health after drain = %+v, want all %d sessions parked and none degraded", h, workers)
	}
	for w, id := range ids {
		snap, err := fs.Get(ctx, id)
		if err != nil {
			t.Fatalf("worker %d: snapshot %s unreadable after drain: %v", w, id, err)
		}
		if got := len(snap.History); got != rounds {
			t.Fatalf("worker %d: snapshot %s has %d submitted rounds, want %d — a submitted round was lost", w, id, got, rounds)
		}
	}
}
