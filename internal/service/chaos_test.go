package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"exptrain/internal/belief"
	"exptrain/internal/dataset"
	"exptrain/internal/game"
	"exptrain/internal/persist"
	"exptrain/internal/persist/faulty"
)

// TestChaosFlakyStoreWorkload is the acceptance chaos test: a manager
// whose store fails 30% of all operations (seeded) must complete a
// 64-session concurrent workload — constant park/unpark churn through
// 16 resident slots — with zero lost submitted rounds, and every
// session degraded along the way must recover once the faults clear.
// Run under -race (make chaos); ET_CHAOS=1 deepens the workload.
func TestChaosFlakyStoreWorkload(t *testing.T) {
	const workers = 64
	rounds := 2
	if os.Getenv("ET_CHAOS") != "" {
		rounds = 4
	}
	const chaosSeed = 2026
	ctx := context.Background()
	fs := faulty.Wrap(persist.NewMemStore(), faulty.Config{Seed: chaosSeed, FailRate: 0.3})
	m := NewManager(Options{
		MaxSessions: 16,
		IdleTTL:     time.Minute, // churn comes from capacity + explicit evicts, not TTL
		Store:       fs,
		Retry:       fastRetry(),
		RetrySeed:   chaosSeed,
	})

	// Transient outcomes are the designed behavior under a flaky store:
	// clients retry 503s and 429s, so the workers do too.
	transient := func(err error) bool {
		return errors.Is(err, ErrStoreUnavailable) || errors.Is(err, ErrTooManySessions)
	}
	retry := func(op func() error) error {
		for tries := 0; ; tries++ {
			err := op()
			if err == nil || !transient(err) || tries > 5000 {
				return err
			}
			time.Sleep(200 * time.Microsecond)
		}
	}

	ids := make([]string, workers)
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var info Info
			if err := retry(func() (err error) {
				info, err = m.Create(ctx, testSpec())
				return err
			}); err != nil {
				errCh <- fmt.Errorf("worker %d create: %w", w, err)
				return
			}
			ids[w] = info.ID
			for round := 0; round < rounds; round++ {
				var pairs []PairView
				for {
					err := retry(func() (err error) {
						pairs, err = m.Next(ctx, info.ID)
						return err
					})
					if err != nil {
						errCh <- fmt.Errorf("worker %d round %d next: %w", w, round, err)
						return
					}
					labeled := make([]belief.Labeling, len(pairs))
					for i, p := range pairs {
						labeled[i] = belief.Labeling{Pair: dataset.NewPair(p.A, p.B)}
					}
					err = retry(func() (err error) {
						_, err = m.Submit(ctx, info.ID, UncheckedRound, labeled)
						return err
					})
					if errors.Is(err, game.ErrNoRoundPending) {
						// An eviction between Next and Submit discarded the
						// pending (evidence-free) round; present it again.
						continue
					}
					if err != nil {
						errCh <- fmt.Errorf("worker %d round %d submit: %w", w, round, err)
						return
					}
					break
				}
				// Half the workers force eviction churn through the flaky
				// store. Failure is fine — the session goes degraded and
				// keeps serving; that is the mode under test.
				if w%2 == 0 {
					_ = m.Evict(ctx, info.ID)
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	if ops, injected := fs.Stats(); injected == 0 {
		t.Fatalf("no faults injected over %d store ops; chaos exercised nothing (seed %d)", ops, fs.Seed())
	}

	// Faults clear: every degraded session must checkpoint cleanly on
	// the final drain, and nothing submitted may be missing.
	fs.ClearFaults()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown after faults cleared: %v", err)
	}
	h := m.Health()
	if h.Live != 0 || h.Degraded != 0 || h.Parked != workers {
		t.Fatalf("Health after drain = %+v, want all %d sessions parked and none degraded", h, workers)
	}
	for w, id := range ids {
		snap, err := fs.Get(ctx, id)
		if err != nil {
			t.Fatalf("worker %d: snapshot %s unreadable after drain: %v", w, id, err)
		}
		if got := len(snap.History); got != rounds {
			t.Fatalf("worker %d: snapshot %s has %d submitted rounds, want %d — a submitted round was lost", w, id, got, rounds)
		}
	}
}

// TestChaosShardedReplicaLoss is the sharded acceptance chaos test: a
// multi-shard manager checkpointing through a 3-replica quorum store
// (W=2) must survive losing an entire replica mid-run — every store
// operation flaky at 5% besides — with zero lost submitted rounds, and
// every session's trajectory fingerprint bit-identical to a clean
// single-shard reference run of the same spec. Run under -race
// (make chaos); ET_CHAOS=1 scales to 1024 sessions over 16 shards.
func TestChaosShardedReplicaLoss(t *testing.T) {
	sessions, shards, workers := 96, 8, 32
	const rounds, specSeeds = 2, 8
	if os.Getenv("ET_CHAOS") != "" {
		sessions, shards = 1024, 16
	}
	const chaosSeed = 2026
	ctx := context.Background()

	replicas := make([]*faulty.Store, 3)
	stores := make([]persist.Store, 3)
	for i := range replicas {
		replicas[i] = faulty.Wrap(persist.NewMemStore(), faulty.Config{
			Seed: chaosSeed + uint64(i), FailRate: 0.05,
		})
		stores[i] = replicas[i]
	}
	ms, err := persist.NewMultiStore(stores, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(Options{
		Shards:      shards,
		MaxSessions: sessions / 2, // half-resident: routing + park churn on every shard
		IdleTTL:     time.Minute,
		Store:       ms,
		Retry:       fastRetry(),
		RetrySeed:   chaosSeed,
	})

	transient := func(err error) bool {
		return errors.Is(err, ErrStoreUnavailable) || errors.Is(err, ErrTooManySessions)
	}
	retry := func(op func() error) error {
		for tries := 0; ; tries++ {
			err := op()
			if err == nil || !transient(err) || tries > 5000 {
				return err
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
	// fingerprint captures a session's full trajectory — per-round
	// measurements plus final belief, all floats in %x — without
	// depending on the session id, so chaotic runs compare against a
	// clean reference keyed only by spec seed.
	fingerprint := func(m *Manager, id string) (out []string, err error) {
		rvs, err := m.Rounds(ctx, id)
		if err != nil {
			return nil, err
		}
		for _, rv := range rvs {
			out = append(out, fmt.Sprintf("round %d: labeled=%d revised=%d mae=%x payoff=%x",
				rv.Round, rv.Labeled, rv.Revised, rv.MAE, rv.Payoff))
		}
		hyps, err := m.TopBelief(ctx, id, 16)
		if err != nil {
			return nil, err
		}
		for _, h := range hyps {
			out = append(out, fmt.Sprintf("%s conf=%x ci=[%x,%x]", h.FD, h.Confidence, h.CILow, h.CIHigh))
		}
		return out, nil
	}

	// Replica 0 dies for good once half the workload has been
	// submitted: from then on the fleet runs on a bare quorum.
	var submitted atomic.Int64
	var killOnce sync.Once
	kill := int64(sessions*rounds) / 2

	ids := make([]string, sessions)
	prints := make([][]string, sessions)
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	perWorker := sessions / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < perWorker; k++ {
				sess := w*perWorker + k
				var info Info
				if err := retry(func() (err error) {
					info, err = m.Create(ctx, datasetSpec(uint64(sess%specSeeds)))
					return err
				}); err != nil {
					errCh <- fmt.Errorf("session %d create: %w", sess, err)
					return
				}
				ids[sess] = info.ID
				for round := 0; round < rounds; round++ {
					var pairs []PairView
					for {
						err := retry(func() (err error) {
							pairs, err = m.Next(ctx, info.ID)
							return err
						})
						if err != nil {
							errCh <- fmt.Errorf("session %d round %d next: %w", sess, round, err)
							return
						}
						labeled := make([]belief.Labeling, len(pairs))
						for i, p := range pairs {
							labeled[i] = belief.Labeling{Pair: dataset.NewPair(p.A, p.B)}
						}
						err = retry(func() (err error) {
							_, err = m.Submit(ctx, info.ID, UncheckedRound, labeled)
							return err
						})
						if errors.Is(err, game.ErrNoRoundPending) {
							continue // eviction discarded the pending round; re-present
						}
						if err != nil {
							errCh <- fmt.Errorf("session %d round %d submit: %w", sess, round, err)
							return
						}
						break
					}
					if submitted.Add(1) == kill {
						killOnce.Do(func() { replicas[0].SetFailRate(1) })
					}
					if sess%2 == 0 {
						_ = m.Evict(ctx, info.ID)
					}
				}
				err := retry(func() (err error) {
					prints[sess], err = fingerprint(m, info.ID)
					return err
				})
				if err != nil {
					errCh <- fmt.Errorf("session %d fingerprint: %w", sess, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	for i, r := range replicas {
		if ops, injected := r.Stats(); injected == 0 {
			t.Fatalf("replica %d: no faults injected over %d ops; chaos exercised nothing", i, ops)
		}
	}

	// The surviving replicas heal; replica 0 stays dead. The final
	// drain must still checkpoint every session through the quorum.
	replicas[1].ClearFaults()
	replicas[2].ClearFaults()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown on a bare quorum: %v", err)
	}
	ms.Flush()
	h := m.Health()
	if h.Live != 0 || h.Degraded != 0 || h.Parked != sessions {
		t.Fatalf("Health after drain = %+v, want all %d sessions parked and none degraded", h, sessions)
	}
	for sess, id := range ids {
		snap, err := ms.Get(ctx, id)
		if err != nil {
			t.Fatalf("session %d: snapshot %s unreadable with replica 0 dead: %v", sess, id, err)
		}
		if got := len(snap.History); got != rounds {
			t.Fatalf("session %d: snapshot %s has %d submitted rounds, want %d — a submitted round was lost", sess, id, got, rounds)
		}
	}

	// Golden parity: a clean, single-shard, single-store run of each
	// spec seed must produce the exact trajectory every chaotic sharded
	// session recorded.
	ref := NewManager(Options{})
	for seed := 0; seed < specSeeds; seed++ {
		info, err := ref.Create(ctx, datasetSpec(uint64(seed)))
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < rounds; round++ {
			pairs, err := ref.Next(ctx, info.ID)
			if err != nil {
				t.Fatal(err)
			}
			labeled := make([]belief.Labeling, len(pairs))
			for i, p := range pairs {
				labeled[i] = belief.Labeling{Pair: dataset.NewPair(p.A, p.B)}
			}
			if _, err := ref.Submit(ctx, info.ID, UncheckedRound, labeled); err != nil {
				t.Fatal(err)
			}
		}
		want, err := fingerprint(ref, info.ID)
		if err != nil {
			t.Fatal(err)
		}
		for sess := seed; sess < sessions; sess += specSeeds {
			got := prints[sess]
			if len(got) != len(want) {
				t.Fatalf("session %d (seed %d): fingerprint length %d, reference %d", sess, seed, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("session %d (seed %d) diverges from single-shard reference at line %d:\nsharded:   %s\nreference: %s",
						sess, seed, i, got[i], want[i])
				}
			}
		}
	}
}
