package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"exptrain/internal/belief"
	"exptrain/internal/dataset"
	"exptrain/internal/game"
	"exptrain/internal/persist"
	"exptrain/internal/sampling"
)

// testCSV is a small relation with a near-FD (team→city).
const testCSV = `player,team,city
carter,lakers,la
jordan,lakers,la
smith,bulls,chicago
black,bulls,chicago
jones,bulls,detroit
wade,heat,miami
nash,suns,phoenix
kidd,nets,newark
`

func testSpec() Spec {
	return Spec{
		Source: Source{CSV: []byte(testCSV)},
		Method: sampling.MethodRandom,
		K:      3,
		Seed:   11,
	}
}

func datasetSpec(seed uint64) Spec {
	return Spec{
		Source: Source{Dataset: "OMDB", Rows: 60, Seed: seed},
		Method: sampling.MethodStochasticUS,
		K:      4,
		Seed:   seed,
	}
}

// playRound drives one create-owned session through next+submit.
func playRound(t *testing.T, m *Manager, id string) []PairView {
	t.Helper()
	ctx := context.Background()
	pairs, err := m.Next(ctx, id)
	if err != nil {
		t.Fatalf("Next(%s): %v", id, err)
	}
	labels := make([]LabelingWire, len(pairs))
	for i, p := range pairs {
		labels[i] = LabelingWire{Pair: [2]int{p.A, p.B}}
	}
	labeled := make([]belief.Labeling, len(labels))
	for i, lw := range labels {
		l, err := lw.ToLabeling()
		if err != nil {
			t.Fatal(err)
		}
		labeled[i] = l
	}
	if _, err := m.Submit(ctx, id, UncheckedRound, labeled); err != nil {
		t.Fatalf("Submit(%s): %v", id, err)
	}
	return pairs
}

func TestManagerLifecycle(t *testing.T) {
	m := NewManager(Options{})
	ctx := context.Background()
	info, err := m.Create(ctx, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if info.Rows != 8 || info.Space == 0 {
		t.Fatalf("Info = %+v", info)
	}
	playRound(t, m, info.ID)

	got, err := m.Get(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rounds != 1 || got.Pending != 0 {
		t.Fatalf("after one round: %+v", got)
	}

	hyps, err := m.TopBelief(ctx, info.ID, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hyps) != 5 {
		t.Fatalf("TopBelief returned %d hypotheses", len(hyps))
	}
	if _, err := m.Repairs(ctx, info.ID, 0.5); err != nil {
		t.Fatalf("Repairs: %v", err)
	}

	snapID, err := m.Snapshot(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Store().Get(ctx, snapID); err != nil {
		t.Fatalf("snapshot not in store: %v", err)
	}

	if _, err := m.Get(ctx, "sess-404"); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("unknown id: err = %v, want ErrSessionNotFound", err)
	}
}

func TestManagerProtocolSentinelsOverManager(t *testing.T) {
	m := NewManager(Options{})
	ctx := context.Background()
	info, err := m.Create(ctx, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(ctx, info.ID, UncheckedRound, nil); !errors.Is(err, game.ErrNoRoundPending) {
		t.Fatalf("Submit first: err = %v, want ErrNoRoundPending", err)
	}
	if _, err := m.Next(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Next(ctx, info.ID); !errors.Is(err, game.ErrRoundPending) {
		t.Fatalf("double Next: err = %v, want ErrRoundPending", err)
	}
}

func TestManagerEvictAndTransparentResume(t *testing.T) {
	m := NewManager(Options{})
	ctx := context.Background()
	info, err := m.Create(ctx, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	presented := playRound(t, m, info.ID)
	if err := m.Evict(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	live, parked := m.Counts()
	if live != 0 || parked != 1 {
		t.Fatalf("after evict: live=%d parked=%d", live, parked)
	}
	// The checkpoint is recoverable straight from the store.
	snap, err := m.Store().Get(ctx, info.ID)
	if err != nil {
		t.Fatalf("evicted snapshot missing from store: %v", err)
	}
	if len(snap.History) != 1 {
		t.Fatalf("snapshot history has %d rounds, want 1", len(snap.History))
	}
	// Parked sessions still list and report state.
	got, err := m.Get(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Parked {
		t.Fatalf("Get after evict: %+v", got)
	}
	// Accessing the session resumes it transparently with history and
	// freshness preserved.
	pairs, err := m.Next(ctx, info.ID)
	if err != nil {
		t.Fatalf("Next after evict: %v", err)
	}
	seen := map[dataset.Pair]bool{}
	for _, p := range presented {
		seen[dataset.NewPair(p.A, p.B)] = true
	}
	for _, p := range pairs {
		if seen[dataset.NewPair(p.A, p.B)] {
			t.Fatalf("resumed session re-presented pair (%d,%d)", p.A, p.B)
		}
	}
	got, err = m.Get(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Parked || got.Rounds != 1 || got.Pending == 0 {
		t.Fatalf("after resume: %+v", got)
	}
}

func TestManagerTTLSweep(t *testing.T) {
	m := NewManager(Options{IdleTTL: time.Minute})
	ctx := context.Background()
	clock := time.Unix(1000, 0)
	m.setNow(func() time.Time { return clock })

	a, err := m.Create(ctx, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(30 * time.Second)
	b, err := m.Create(ctx, datasetSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(45 * time.Second)
	// a is now 75s idle (over the TTL), b 45s (under).
	swept, err := m.Sweep(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(swept) != 1 || swept[0] != a.ID {
		t.Fatalf("Sweep = %v, want [%s]", swept, a.ID)
	}
	live, parked := m.Counts()
	if live != 1 || parked != 1 {
		t.Fatalf("after sweep: live=%d parked=%d", live, parked)
	}
	if _, err := m.Store().Get(ctx, a.ID); err != nil {
		t.Fatalf("swept session has no recoverable snapshot: %v", err)
	}
	if _, err := m.Get(ctx, b.ID); err != nil {
		t.Fatal(err)
	}
}

func TestManagerBackpressureAndLRUCapacityEviction(t *testing.T) {
	m := NewManager(Options{MaxSessions: 2})
	ctx := context.Background()
	clock := time.Unix(2000, 0)
	m.setNow(func() time.Time { return clock })

	a, err := m.Create(ctx, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(time.Second)
	if _, err := m.Create(ctx, datasetSpec(4)); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(time.Second)
	// Third create evicts the LRU session (a) rather than failing.
	c, err := m.Create(ctx, datasetSpec(5))
	if err != nil {
		t.Fatalf("create at capacity should evict LRU: %v", err)
	}
	live, parked := m.Counts()
	if live != 2 || parked != 1 {
		t.Fatalf("after LRU eviction: live=%d parked=%d", live, parked)
	}
	if _, err := m.Store().Get(ctx, a.ID); err != nil {
		t.Fatalf("LRU-evicted session not checkpointed: %v", err)
	}
	_ = c

	// When every resident session is mid-request, nothing is evictable
	// and create fails with the backpressure sentinel.
	m2 := NewManager(Options{MaxSessions: 1})
	d, err := m2.Create(ctx, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	sh := m2.shardFor(d.ID)
	sh.mu.Lock()
	e := sh.live[d.ID]
	sh.mu.Unlock()
	e.mu.Lock() // simulate an in-flight request
	_, err = m2.Create(ctx, datasetSpec(6))
	e.mu.Unlock()
	if !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("create with all sessions busy: err = %v, want ErrTooManySessions", err)
	}
}

func TestManagerShutdownCheckpointsEverything(t *testing.T) {
	store := persist.NewMemStore()
	m := NewManager(Options{Store: store})
	ctx := context.Background()
	var ids []string
	for i := 0; i < 5; i++ {
		info, err := m.Create(ctx, datasetSpec(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		playRound(t, m, info.ID)
		ids = append(ids, info.ID)
	}
	// One session has a pending (unsubmitted) round at shutdown; its
	// submitted history must still be checkpointed.
	if _, err := m.Next(ctx, ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		snap, err := store.Get(ctx, id)
		if err != nil {
			t.Fatalf("session %s not checkpointed: %v", id, err)
		}
		if len(snap.History) != 1 {
			t.Fatalf("session %s lost its submitted round: %d in history", id, len(snap.History))
		}
	}
	if _, err := m.Create(ctx, testSpec()); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("create after shutdown: err = %v, want ErrShuttingDown", err)
	}
	if _, err := m.Next(ctx, ids[1]); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("next after shutdown: err = %v, want ErrShuttingDown", err)
	}
}

// TestManagerConcurrentSessions hammers one manager from many
// goroutines — the test that must pass under -race. Sessions are
// created, played, evicted and resumed concurrently while a sweeper
// runs, with capacity forcing LRU churn.
func TestManagerConcurrentSessions(t *testing.T) {
	m := NewManager(Options{MaxSessions: 8, IdleTTL: time.Millisecond})
	ctx := context.Background()
	const workers = 24
	var workersWG, sweeperWG sync.WaitGroup
	errCh := make(chan error, workers+1)

	stop := make(chan struct{})
	sweeperWG.Add(1)
	go func() { // background sweeper, as cmd/etserve runs
		defer sweeperWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := m.Sweep(ctx); err != nil {
					errCh <- fmt.Errorf("sweep: %w", err)
					return
				}
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	// With 24 workers against 8 slots, ErrTooManySessions is the
	// designed outcome whenever every resident session is mid-request;
	// clients are expected to retry, so the workers do too.
	retry := func(op func() error) error {
		for tries := 0; ; tries++ {
			err := op()
			if !errors.Is(err, ErrTooManySessions) || tries > 5000 {
				return err
			}
			time.Sleep(200 * time.Microsecond)
		}
	}

	for w := 0; w < workers; w++ {
		workersWG.Add(1)
		go func(w int) {
			defer workersWG.Done()
			var info Info
			err := retry(func() (err error) {
				info, err = m.Create(ctx, datasetSpec(uint64(w)))
				return err
			})
			if err != nil {
				errCh <- fmt.Errorf("worker %d create: %w", w, err)
				return
			}
			for round := 0; round < 3; round++ {
				for {
					var pairs []PairView
					err := retry(func() (err error) {
						pairs, err = m.Next(ctx, info.ID)
						return err
					})
					if err != nil {
						errCh <- fmt.Errorf("worker %d next: %w", w, err)
						return
					}
					labeled := make([]belief.Labeling, len(pairs))
					for i, p := range pairs {
						labeled[i] = belief.Labeling{Pair: dataset.NewPair(p.A, p.B)}
					}
					err = retry(func() (err error) {
						_, err = m.Submit(ctx, info.ID, UncheckedRound, labeled)
						return err
					})
					if errors.Is(err, game.ErrNoRoundPending) {
						// The aggressive 1ms-TTL sweeper parked the session
						// between Next and Submit, discarding the pending
						// (evidence-free) round; present it again.
						continue
					}
					if err != nil {
						errCh <- fmt.Errorf("worker %d submit: %w", w, err)
						return
					}
					break
				}
			}
			if w%3 == 0 {
				if err := m.Evict(ctx, info.ID); err != nil {
					errCh <- fmt.Errorf("worker %d evict: %w", w, err)
					return
				}
			}
			got, err := m.Get(ctx, info.ID)
			if err != nil {
				errCh <- fmt.Errorf("worker %d get: %w", w, err)
				return
			}
			if !got.Parked && got.Rounds != 3 {
				errCh <- fmt.Errorf("worker %d: rounds = %d, want 3", w, got.Rounds)
			}
		}(w)
	}
	workersWG.Wait()
	close(stop)
	sweeperWG.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}
