package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Streaming round delivery: GET /v1/sessions/{id}/rounds?stream=1
// upgrades the rounds endpoint to a Server-Sent Events stream. The
// server pushes each scored round as an `event: round` with the round
// index as its SSE id, so a client that reconnects with Last-Event-ID
// resumes exactly after the last round it saw — every round is
// delivered exactly once across any number of reconnects. Presented
// pairs ride along as id-less `event: pairs` (advisory, re-sent on
// reconnect), idle streams carry heartbeat comments, and a draining
// manager closes every stream with a final `event: drain` so clients
// fail over instead of waiting out a heartbeat.

// StreamChunk is one coherent observation of a session for streaming:
// the scored rounds from a cursor, plus whatever round is currently
// presented. Fetched under a single entry-lock acquisition so the
// round series and the pending pairs can never disagree.
type StreamChunk struct {
	// Rounds are the scored rounds with index >= the requested cursor.
	Rounds []RoundView
	// Total is the number of rounds scored so far (the next cursor).
	Total int
	// Pending holds the currently presented round's pairs (nil when no
	// round is pending); PendingRound is the round index they belong to
	// (== Total: the round being played now).
	Pending      []PairView
	PendingRound int
	// Remaining counts never-presented candidate pairs; 0 with no
	// pending round means the session is complete.
	Remaining int
}

// StreamChunk implements Shard: the session's stream state from a
// round cursor.
func (sh *shard) StreamChunk(ctx context.Context, id string, from int) (StreamChunk, error) {
	e, err := sh.acquire(ctx, id)
	if err != nil {
		return StreamChunk{}, err
	}
	defer e.mu.Unlock()
	c := StreamChunk{
		Total:     len(e.stats.rounds),
		Remaining: e.sess.RemainingPairs(),
	}
	if from < 0 {
		from = 0
	}
	if from < c.Total {
		c.Rounds = append([]RoundView(nil), e.stats.rounds[from:]...)
	}
	if pending := e.sess.Pending(); len(pending) > 0 {
		c.Pending = renderPairs(e.sess.Relation(), pending)
		c.PendingRound = e.sess.Rounds()
	}
	return c, nil
}

// subscribeStream registers a wakeup channel for the session's
// activity: notifyStreams pokes it (coalescing, capacity 1) whenever a
// round is presented or applied. The returned cancel must be called.
func (sh *shard) subscribeStream(id string) (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	sh.streamMu.Lock()
	set := sh.streams[id]
	if set == nil {
		set = make(map[chan struct{}]struct{})
		sh.streams[id] = set
	}
	set[ch] = struct{}{}
	sh.streamMu.Unlock()
	return ch, func() {
		sh.streamMu.Lock()
		delete(sh.streams[id], ch)
		if len(sh.streams[id]) == 0 {
			delete(sh.streams, id)
		}
		sh.streamMu.Unlock()
	}
}

// notifyStreams wakes the session's attached streams. Non-blocking:
// a stream already poked and not yet drained needs no second poke.
func (sh *shard) notifyStreams(id string) {
	sh.streamMu.Lock()
	for ch := range sh.streams[id] {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	sh.streamMu.Unlock()
}

// DrainSignal is closed when Shutdown begins; streams select on it to
// close promptly. Router-owned: one signal covers every shard.
func (m *Manager) DrainSignal() <-chan struct{} { return m.drainSignal }

// StreamChunk reads the session's stream state from a round cursor.
func (m *Manager) StreamChunk(ctx context.Context, id string, from int) (StreamChunk, error) {
	return m.shardFor(id).StreamChunk(ctx, id, from)
}

// subscribeStream registers a wakeup channel on the session's home
// shard; see the shard method above.
func (m *Manager) subscribeStream(id string) (<-chan struct{}, func()) {
	return m.shardFor(id).subscribeStream(id)
}

// sseWriter frames Server-Sent Events onto a flushing ResponseWriter.
type sseWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

// event writes one SSE frame. id < 0 omits the id line, so the frame
// does not advance the client's Last-Event-ID (pairs, errors, drain —
// the advisory events a resume should not skip rounds over).
func (s sseWriter) event(name string, id int, data any) error {
	var b strings.Builder
	fmt.Fprintf(&b, "event: %s\n", name)
	if id >= 0 {
		fmt.Fprintf(&b, "id: %d\n", id)
	}
	payload, err := json.Marshal(data)
	if err != nil {
		return err
	}
	fmt.Fprintf(&b, "data: %s\n\n", payload)
	if _, err := s.w.Write([]byte(b.String())); err != nil {
		return err
	}
	s.f.Flush()
	return nil
}

// comment writes an SSE comment line (the heartbeat).
func (s sseWriter) comment(text string) error {
	if _, err := s.w.Write([]byte(": " + text + "\n\n")); err != nil {
		return err
	}
	s.f.Flush()
	return nil
}

// pairsEvent is the `event: pairs` payload: the presented round and
// its pairs, so a streaming client can label without polling /next.
type pairsEvent struct {
	Round int        `json:"round"`
	Pairs []PairView `json:"pairs"`
}

// doneEvent is the `event: done` payload, sent once when the session
// has presented every candidate pair and nothing is pending.
type doneEvent struct {
	Rounds int `json:"rounds"`
}

// handleStream serves GET /v1/sessions/{id}/rounds?stream=1.
//
// Wire contract (see API.md §SSE): `event: round` frames carry one
// RoundView each with `id:` set to the round index; a reconnecting
// client sends Last-Event-ID and receives exactly the rounds after it.
// `event: pairs` (no id) announces the currently presented round,
// `event: drain` (no id) announces manager shutdown, `event: done`
// (no id) announces session completion; `: hb` comments keep idle
// connections alive. Errors before the first frame are plain JSON
// envelopes; errors after are a final `event: error` frame carrying
// the same envelope.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, fmt.Errorf("streaming unsupported by this connection"))
		return
	}

	// Resume cursor: rounds strictly after Last-Event-ID (the standard
	// SSE reconnect header), or from 0.
	from := 0
	if lei := r.Header.Get("Last-Event-ID"); lei != "" {
		n, err := strconv.Atoi(lei)
		if err != nil || n < 0 {
			writeError(w, badRequest(fmt.Errorf("malformed Last-Event-ID %q", lei)))
			return
		}
		from = n + 1
	}

	// Subscribe before the initial fetch: an event landing between the
	// fetch and the subscription would otherwise be missed.
	wake, cancel := s.mgr.subscribeStream(id)
	defer cancel()

	fetch := func() (StreamChunk, error) {
		ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
		defer cancel()
		return s.mgr.StreamChunk(ctx, id, from)
	}

	chunk, err := fetch()
	if err != nil {
		writeError(w, err) // headers not sent yet: plain envelope
		return
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush() // release the headers now; frames may be a while
	out := sseWriter{w: w, f: flusher}

	heartbeat := time.NewTicker(s.opts.StreamHeartbeat)
	defer heartbeat.Stop()

	// lastPairs dedupes pairs frames: a chunk fetched for a wakeup that
	// only scored rounds re-reports the same pending round.
	lastPairs := -1
	emit := func(c StreamChunk) (done bool, err error) {
		for _, rv := range c.Rounds {
			if err := out.event("round", rv.Round, rv); err != nil {
				return false, err
			}
		}
		from = c.Total
		if c.Pending != nil && c.PendingRound != lastPairs {
			lastPairs = c.PendingRound
			if err := out.event("pairs", -1, pairsEvent{Round: c.PendingRound, Pairs: c.Pending}); err != nil {
				return false, err
			}
		}
		if c.Remaining == 0 && c.Pending == nil {
			return true, out.event("done", -1, doneEvent{Rounds: c.Total})
		}
		return false, nil
	}

	if done, err := emit(chunk); done || err != nil {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.mgr.DrainSignal():
			// Best-effort farewell so clients fail over immediately.
			_ = out.event("drain", -1, struct{}{})
			return
		case <-heartbeat.C:
			if err := out.comment("hb"); err != nil {
				return
			}
		case <-wake:
			c, err := fetch()
			if err != nil {
				// Headers are long gone: surface the envelope in-stream.
				_, e := apiError(err)
				_ = out.event("error", -1, e)
				return
			}
			if done, err := emit(c); done || err != nil {
				return
			}
		}
	}
}
