package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// sseFrame is one parsed Server-Sent Events frame (or a comment, for
// which only Comment is set).
type sseFrame struct {
	Event   string
	ID      int // -1 when the frame carried no id line
	Data    string
	Comment string
}

// readFrame blocks until one SSE frame (or comment block) is read.
func readFrame(rd *bufio.Reader) (sseFrame, error) {
	f := sseFrame{ID: -1}
	seen := false
	for {
		line, err := rd.ReadString('\n')
		if err != nil {
			return f, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if seen {
				return f, nil
			}
		case strings.HasPrefix(line, ": "):
			f.Comment = strings.TrimPrefix(line, ": ")
			seen = true
		case strings.HasPrefix(line, "event: "):
			f.Event = strings.TrimPrefix(line, "event: ")
			seen = true
		case strings.HasPrefix(line, "id: "):
			n, err := strconv.Atoi(strings.TrimPrefix(line, "id: "))
			if err != nil {
				return f, fmt.Errorf("bad id line %q: %w", line, err)
			}
			f.ID = n
			seen = true
		case strings.HasPrefix(line, "data: "):
			f.Data = strings.TrimPrefix(line, "data: ")
			seen = true
		default:
			return f, fmt.Errorf("unexpected SSE line %q", line)
		}
	}
}

// dialStream opens the SSE stream for a session, optionally resuming
// with Last-Event-ID (pass -1 for a fresh stream).
func dialStream(t *testing.T, ts *httptest.Server, id string, lastEventID int) (*http.Response, *bufio.Reader) {
	t.Helper()
	req, err := http.NewRequest("GET", ts.URL+"/v1/sessions/"+id+"/rounds?stream=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID >= 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(lastEventID))
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type %q", ct)
	}
	return resp, bufio.NewReader(resp.Body)
}

// TestStreamLiveDelivery races three concurrent enqueue windows and a
// small DrainBatch against one attached stream: every round must
// arrive as an `event: round` with its index as the SSE id, in order,
// exactly once, interleaved with `event: pairs` announcements, and the
// session's completion must close the stream with `event: done`.
func TestStreamLiveDelivery(t *testing.T) {
	m := NewManager(Options{DrainBatch: 2})
	ts := httptest.NewServer(NewServer(m, ServerOptions{StreamHeartbeat: 25 * time.Millisecond}))
	t.Cleanup(ts.Close)
	ctx := context.Background()

	info, err := m.Create(ctx, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	resp, rd := dialStream(t, ts, info.ID, -1)
	defer resp.Body.Close()

	// Round 0 is played interactively so the stream observes a pending
	// round (pool-driven rounds present and submit under one lock hold,
	// so only interactive /next exposes pairs frames). The submit waits
	// until the pairs frame actually arrived.
	if _, err := m.Next(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	sawPairs := false
	for !sawPairs {
		f, err := readFrame(rd)
		if err != nil {
			t.Fatalf("waiting for pairs frame: %v", err)
		}
		if f.Event == "pairs" {
			if f.ID != -1 {
				t.Fatalf("pairs frame carries id %d; advisory frames must not advance Last-Event-ID", f.ID)
			}
			var pe struct {
				Round int        `json:"round"`
				Pairs []PairView `json:"pairs"`
			}
			if err := json.Unmarshal([]byte(f.Data), &pe); err != nil || pe.Round != 0 || len(pe.Pairs) == 0 {
				t.Fatalf("pairs payload %q (err %v)", f.Data, err)
			}
			sawPairs = true
		}
	}
	if _, err := m.Submit(ctx, info.ID, 0, nil); err != nil {
		t.Fatal(err)
	}
	// The rest of the window, split across concurrent enqueues arriving
	// in arbitrary order; the pool's round ordering serializes them.
	for _, win := range [][2]int{{3, 4}, {1, 3}} {
		go func(lo, hi int) {
			if _, err := m.EnqueueSubmissions(ctx, info.ID, abstainWindow(lo, hi)); err != nil {
				t.Errorf("enqueue [%d,%d): %v", lo, hi, err)
			}
		}(win[0], win[1])
	}

	wantRound, sawHeartbeat := 0, false
	for {
		f, err := readFrame(rd)
		if err != nil {
			t.Fatalf("after round %d: %v", wantRound, err)
		}
		switch {
		case f.Comment != "":
			sawHeartbeat = true
		case f.Event == "round":
			if f.ID != wantRound {
				t.Fatalf("round event id %d, want %d (exactly-once ordering)", f.ID, wantRound)
			}
			var rv RoundView
			if err := json.Unmarshal([]byte(f.Data), &rv); err != nil || rv.Round != f.ID {
				t.Fatalf("round payload %q (err %v)", f.Data, err)
			}
			wantRound++
		case f.Event == "pairs":
			if f.ID != -1 {
				t.Fatalf("pairs frame carries id %d; advisory frames must not advance Last-Event-ID", f.ID)
			}
			sawPairs = true
		case f.Event == "done":
			if wantRound != 4 {
				t.Fatalf("done after %d rounds, want 4", wantRound)
			}
			if !sawPairs {
				t.Fatal("no pairs frame before completion")
			}
			// The server closes after done.
			if _, err := readFrame(rd); err == nil {
				t.Fatal("stream stayed open after done")
			}
			_ = sawHeartbeat // heartbeats are timing-dependent; presence not asserted
			return
		default:
			t.Fatalf("unexpected frame %+v", f)
		}
	}
}

// TestStreamResumeExactlyOnce is the satellite acceptance test: a
// client that disconnects mid-stream and reconnects with Last-Event-ID
// receives every round exactly once across the two connections — with
// the session parked by a sweep in between (the cursor lives in the
// client, not the entry) and concurrent batched drains feeding the
// tail of the window during the second connection.
func TestStreamResumeExactlyOnce(t *testing.T) {
	m := NewManager(Options{DrainBatch: 3, IdleTTL: time.Minute})
	ts := httptest.NewServer(NewServer(m, ServerOptions{}))
	t.Cleanup(ts.Close)
	ctx := context.Background()

	info, err := m.Create(ctx, datasetSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	id := info.ID
	tickets, err := m.EnqueueSubmissions(ctx, id, abstainWindow(0, 6))
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range tickets {
		if got := waitTicket(t, m, id, tk.ID); got.State != TicketApplied {
			t.Fatalf("round %d: %+v", tk.Round, got)
		}
	}

	// Connection 1: read the first three rounds, then vanish.
	resp1, rd1 := dialStream(t, ts, id, -1)
	last := -1
	for last < 2 {
		f, err := readFrame(rd1)
		if err != nil {
			t.Fatal(err)
		}
		if f.Event == "round" {
			if f.ID != last+1 {
				t.Fatalf("conn1 round id %d, want %d", f.ID, last+1)
			}
			last = f.ID
		}
	}
	resp1.Body.Close()

	// Park the session while no stream is attached: the resume cursor
	// must survive eviction because it lives in Last-Event-ID, and the
	// reconnect must transparently unpark.
	base := time.Now()
	m.setNow(func() time.Time { return base.Add(2 * time.Minute) })
	swept, err := m.Sweep(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(swept) != 1 {
		t.Fatalf("sweep parked %v, want [%s]", swept, id)
	}

	// Connection 2 resumes after round `last`, while a concurrent
	// enqueue extends the window mid-stream.
	resp2, rd2 := dialStream(t, ts, id, last)
	defer resp2.Body.Close()
	go func() {
		if _, err := m.EnqueueSubmissions(ctx, id, abstainWindow(6, 10)); err != nil {
			t.Errorf("tail enqueue: %v", err)
		}
	}()
	for last < 9 {
		f, err := readFrame(rd2)
		if err != nil {
			t.Fatalf("conn2 after round %d: %v", last, err)
		}
		if f.Event == "round" {
			if f.ID != last+1 {
				t.Fatalf("conn2 round id %d, want %d — duplicate or gap across resume", f.ID, last+1)
			}
			last = f.ID
		}
	}
}

// TestStreamDrainClose: a draining manager says goodbye with
// `event: drain` instead of leaving clients to time out.
func TestStreamDrainClose(t *testing.T) {
	m := NewManager(Options{})
	ts := httptest.NewServer(NewServer(m, ServerOptions{}))
	t.Cleanup(ts.Close)
	ctx := context.Background()
	info, err := m.Create(ctx, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	resp, rd := dialStream(t, ts, info.ID, -1)
	defer resp.Body.Close()

	done := make(chan error, 1)
	go func() { done <- m.Shutdown(ctx) }()
	for {
		f, err := readFrame(rd)
		if err != nil {
			t.Fatalf("before drain frame: %v", err)
		}
		if f.Event == "drain" {
			break
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestStreamErrors: pre-stream failures are plain JSON envelopes, and
// a malformed resume cursor is rejected up front.
func TestStreamErrors(t *testing.T) {
	_, c, ts := newTestServer(t, Options{})
	raw := c.expect(http.StatusNotFound, "GET", "/v1/sessions/sess-none/rounds?stream=1", nil, nil)
	var e APIError
	if err := json.Unmarshal(raw, &e); err != nil || e.Kind != KindNotFound {
		t.Fatalf("missing-session stream body %s (err %v)", raw, err)
	}

	req, err := http.NewRequest("GET", ts.URL+"/v1/sessions/sess-none/rounds?stream=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "three")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed Last-Event-ID: status %d, want 400", resp.StatusCode)
	}
}
