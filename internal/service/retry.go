package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"exptrain/internal/persist"
)

// RetryPolicy bounds the manager's retries against a flaky store.
// Checkpoint and resume operations are retried with exponential backoff
// and deterministic jitter; a zero value gets the defaults.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per store operation
	// (default 4; 1 disables retrying).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (default 5ms);
	// it doubles per attempt.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 250ms).
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 5 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 250 * time.Millisecond
	}
	return p
}

// retryable classifies a store error. Definitive answers — the id does
// not exist, the id is malformed, the bytes are corrupt — will not
// change on a retry; everything else (I/O errors, injected faults,
// ambiguous cancellations) might.
func retryable(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, persist.ErrNotFound),
		errors.Is(err, persist.ErrBadID),
		errors.Is(err, persist.ErrCorrupt):
		return false
	default:
		return true
	}
}

// backoff computes the delay before the next attempt: exponential in
// the attempt number, capped, with deterministic jitter in
// [delay/2, delay) drawn from the shard's seeded stream — derived
// from (RetrySeed, shard id) — so retry schedules are reproducible
// under test, decorrelated across concurrent sessions, and never
// aligned across shards after a store outage.
func (sh *shard) backoff(p RetryPolicy, attempt int) time.Duration {
	delay := p.BaseDelay << (attempt - 1)
	if delay > p.MaxDelay || delay <= 0 { // <= 0 catches shift overflow
		delay = p.MaxDelay
	}
	sh.mu.Lock()
	jitter := sh.rrng.Float64()
	sh.mu.Unlock()
	return delay/2 + time.Duration(jitter*float64(delay/2))
}

// sleepCtx waits for d, honoring ctx.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// storeRetry runs op under the shard's retry policy. A success (on
// any attempt) clears the shard's last-store-error; exhausting the
// policy records the failure and wraps it in ErrStoreUnavailable so the
// HTTP layer can answer 503 + Retry-After instead of an opaque 500.
// Non-retryable errors pass through untouched — ErrNotFound must stay
// ErrNotFound.
func (sh *shard) storeRetry(ctx context.Context, what string, op func(context.Context) error) error {
	p := sh.opts.Retry
	var last error
	for attempt := 1; ; attempt++ {
		last = op(ctx)
		if last == nil {
			sh.noteStoreOK()
			return nil
		}
		if !retryable(last) {
			return last
		}
		if attempt >= p.MaxAttempts || ctx.Err() != nil {
			break
		}
		if err := sleepCtx(ctx, sh.backoff(p, attempt)); err != nil {
			break
		}
	}
	err := fmt.Errorf("service: %s failed after %d attempts: %w: %w", what, p.MaxAttempts, ErrStoreUnavailable, last)
	sh.noteStoreFailure(err)
	return err
}

// noteStoreOK records a healthy store interaction.
func (sh *shard) noteStoreOK() {
	sh.mu.Lock()
	sh.storeErr = nil
	sh.mu.Unlock()
}

// noteStoreFailure records an exhausted-retries store failure.
func (sh *shard) noteStoreFailure(err error) {
	sh.mu.Lock()
	sh.storeFails++
	sh.storeErr = err
	sh.mu.Unlock()
}
