package service

import (
	"exptrain/internal/belief"
	"exptrain/internal/dataset"
	"exptrain/internal/game"
)

// DetectionView is a round's held-out error-detection score, rendered.
type DetectionView struct {
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
}

// RoundView is one submitted round's measurements: how many pairs were
// labeled and revised, the learner's distance to the reference belief
// (MAE), the round's trainer payoff, and — for sessions created with
// eval — the believed model's detection score on the held-out split.
type RoundView struct {
	Round     int            `json:"round"`
	Labeled   int            `json:"labeled"`
	Revised   int            `json:"revised"`
	MAE       float64        `json:"mae"`
	Payoff    float64        `json:"payoff"`
	Detection *DetectionView `json:"detection,omitempty"`
}

// roundStats is the per-session observer the manager installs on every
// hosted session: it folds the engine's RoundScored events into the
// rendered per-round series served by GET /sessions/{id}/rounds.
//
// No internal locking: the engine serializes events per session, and
// every read goes through the entry lock that also guards the session
// itself, so the entry mutex is the synchronization point.
type roundStats struct {
	game.NopObserver
	eval   bool
	rounds []RoundView
	// events is the flat observer-event trace (kind, round) in emission
	// order — the ordering contract made inspectable, exercised by the
	// race tests.
	events []statEvent
}

type statEvent struct {
	kind  string
	round int
}

func (s *roundStats) RoundStarted(t int) {
	s.events = append(s.events, statEvent{"started", t})
}

func (s *roundStats) PairsPresented(t int, pairs []dataset.Pair) {
	s.events = append(s.events, statEvent{"presented", t})
}

func (s *roundStats) RoundSubmitted(t int, labeled, revisions []belief.Labeling) {
	s.events = append(s.events, statEvent{"submitted", t})
}

func (s *roundStats) BeliefUpdated(t int, b *belief.Belief) {
	s.events = append(s.events, statEvent{"updated", t})
}

func (s *roundStats) RoundScored(t int, rec game.IterationRecord) {
	s.events = append(s.events, statEvent{"scored", t})
	s.rounds = append(s.rounds, s.render(t, rec))
}

func (s *roundStats) render(t int, rec game.IterationRecord) RoundView {
	v := RoundView{
		Round:   t,
		Labeled: len(rec.Labeled),
		Revised: len(rec.Revisions),
		MAE:     rec.MAE,
		Payoff:  rec.TrainerPayoff,
	}
	if s.eval {
		v.Detection = &DetectionView{
			Precision: rec.Detection.Precision,
			Recall:    rec.Detection.Recall,
			F1:        rec.Detection.F1,
		}
	}
	return v
}

// prime backfills views for rounds restored from a snapshot, which are
// replayed without observer events.
func (s *roundStats) prime(records []game.IterationRecord) {
	for t, rec := range records {
		s.rounds = append(s.rounds, s.render(t, rec))
	}
}
