package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"exptrain/internal/persist"
	"exptrain/internal/sampling"
)

// client is a thin JSON helper over the httptest server.
type client struct {
	t    *testing.T
	base string
	http *http.Client
}

func newClient(t *testing.T, ts *httptest.Server) *client {
	return &client{t: t, base: ts.URL, http: ts.Client()}
}

// do issues a request and decodes the response into out (if non-nil),
// returning the status code and raw body.
func (c *client) do(method, path string, body, out any) (int, []byte) {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			c.t.Fatalf("%s %s: decoding %q: %v", method, path, raw, err)
		}
	}
	return resp.StatusCode, raw
}

// expect is do plus a status assertion.
func (c *client) expect(status int, method, path string, body, out any) []byte {
	c.t.Helper()
	got, raw := c.do(method, path, body, out)
	if got != status {
		c.t.Fatalf("%s %s: status %d, want %d; body %s", method, path, got, status, raw)
	}
	return raw
}

type nextResponse struct {
	Pairs []PairView `json:"pairs"`
}

// playHTTPRound runs one next+submit cycle over the wire, marking
// nothing erroneous.
func (c *client) playHTTPRound(id string) Info {
	c.t.Helper()
	var next nextResponse
	c.expect(http.StatusOK, "POST", "/v1/sessions/"+id+"/next", nil, &next)
	labels := make([]LabelingWire, len(next.Pairs))
	for i, p := range next.Pairs {
		labels[i] = LabelingWire{Pair: [2]int{p.A, p.B}}
	}
	var info Info
	c.expect(http.StatusOK, "POST", "/v1/sessions/"+id+"/submit", SubmitRequest{Labels: labels}, &info)
	return info
}

func newTestServer(t *testing.T, opts Options) (*Manager, *client, *httptest.Server) {
	t.Helper()
	m := NewManager(opts)
	ts := httptest.NewServer(NewServer(m, ServerOptions{}))
	t.Cleanup(ts.Close)
	return m, newClient(t, ts), ts
}

func TestServerRoundTrip(t *testing.T) {
	m, c, _ := newTestServer(t, Options{})

	var info Info
	c.expect(http.StatusCreated, "POST", "/v1/sessions",
		CreateRequest{CSV: testCSV, Method: sampling.MethodRandom, K: 3, Seed: 7}, &info)
	if info.Rows != 8 || info.ID == "" {
		t.Fatalf("create: %+v", info)
	}

	info = c.playHTTPRound(info.ID)
	if info.Rounds != 1 {
		t.Fatalf("after round: %+v", info)
	}

	var belief struct {
		Hypotheses []HypothesisView `json:"hypotheses"`
	}
	c.expect(http.StatusOK, "GET", "/v1/sessions/"+info.ID+"/belief?k=3", nil, &belief)
	if len(belief.Hypotheses) != 3 {
		t.Fatalf("belief: %+v", belief)
	}
	var repairs struct {
		Repairs []RepairView `json:"repairs"`
	}
	c.expect(http.StatusOK, "GET", "/v1/sessions/"+info.ID+"/repairs?tau=0.4", nil, &repairs)

	var snap struct {
		Snapshot string `json:"snapshot"`
	}
	c.expect(http.StatusOK, "POST", "/v1/sessions/"+info.ID+"/snapshot", nil, &snap)
	if _, err := m.Store().Get(context.Background(), snap.Snapshot); err != nil {
		t.Fatalf("snapshot %q not in store: %v", snap.Snapshot, err)
	}

	var list struct {
		Sessions []Info `json:"sessions"`
	}
	c.expect(http.StatusOK, "GET", "/v1/sessions", nil, &list)
	if len(list.Sessions) != 1 {
		t.Fatalf("list: %+v", list)
	}
}

func TestServerStatusMapping(t *testing.T) {
	_, c, _ := newTestServer(t, Options{})

	kind := func(raw []byte) string {
		var e APIError
		if err := json.Unmarshal(raw, &e); err != nil {
			t.Fatalf("error body %q: %v", raw, err)
		}
		return e.Kind
	}

	if raw := c.expect(http.StatusNotFound, "GET", "/v1/sessions/sess-999", nil, nil); kind(raw) != "not_found" {
		t.Fatalf("kind = %s", kind(raw))
	}
	// Unknown sampling method name → 400 at decode time.
	resp0, err := http.Post(c.base+"/v1/sessions", "application/json",
		strings.NewReader(`{"csv":"a,b\n1,2\n","method":"Bogus"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp0.Body.Close()
	if resp0.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus method: status %d", resp0.StatusCode)
	}
	c.expect(http.StatusBadRequest, "POST", "/v1/sessions",
		CreateRequest{Dataset: "OMDB", CSV: testCSV}, nil) // both sources
	c.expect(http.StatusBadRequest, "POST", "/v1/sessions", CreateRequest{}, nil)

	var info Info
	c.expect(http.StatusCreated, "POST", "/v1/sessions",
		CreateRequest{CSV: testCSV, Method: sampling.MethodRandom, K: 3, Seed: 7}, &info)
	id := info.ID

	// Submit before next → 409 no_round_pending.
	if raw := c.expect(http.StatusConflict, "POST", "/v1/sessions/"+id+"/submit",
		SubmitRequest{}, nil); kind(raw) != "no_round_pending" {
		t.Fatalf("kind = %s", kind(raw))
	}
	// Double next → 409 round_pending.
	var pending nextResponse
	c.expect(http.StatusOK, "POST", "/v1/sessions/"+id+"/next", nil, &pending)
	if raw := c.expect(http.StatusConflict, "POST", "/v1/sessions/"+id+"/next", nil, nil); kind(raw) != "round_pending" {
		t.Fatalf("kind = %s", kind(raw))
	}
	// Malformed JSON → 400.
	resp, err := http.Post(c.base+"/v1/sessions", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d", resp.StatusCode)
	}

	// Submit the round left pending above, then drain the 28-pair pool
	// (K=3) until the service answers 410 pool_exhausted.
	labels := make([]LabelingWire, len(pending.Pairs))
	for i, p := range pending.Pairs {
		labels[i] = LabelingWire{Pair: [2]int{p.A, p.B}}
	}
	c.expect(http.StatusOK, "POST", "/v1/sessions/"+id+"/submit", SubmitRequest{Labels: labels}, nil)
	for round := 0; ; round++ {
		if round > 30 {
			t.Fatal("pool never exhausted")
		}
		var n nextResponse
		status, raw := c.do("POST", "/v1/sessions/"+id+"/next", nil, &n)
		if status == http.StatusGone {
			var e APIError
			if err := json.Unmarshal(raw, &e); err != nil || e.Kind != "pool_exhausted" {
				t.Fatalf("exhausted body %s (err %v)", raw, err)
			}
			return
		}
		if status != http.StatusOK {
			t.Fatalf("next: status %d body %s", status, raw)
		}
		labels := make([]LabelingWire, len(n.Pairs))
		for i, p := range n.Pairs {
			labels[i] = LabelingWire{Pair: [2]int{p.A, p.B}}
		}
		c.expect(http.StatusOK, "POST", "/v1/sessions/"+id+"/submit", SubmitRequest{Labels: labels}, nil)
	}
}

// TestServerConcurrentSessions is the acceptance-criteria test: 64
// concurrent sessions, each completing create → next → submit →
// snapshot over HTTP under -race.
func TestServerConcurrentSessions(t *testing.T) {
	const sessions = 64
	m, c, _ := newTestServer(t, Options{MaxSessions: sessions})

	var wg sync.WaitGroup
	errCh := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fail := func(stage string, detail any) {
				errCh <- fmt.Errorf("session %d %s: %v", i, stage, detail)
			}
			var info Info
			status, raw := c.do("POST", "/v1/sessions", CreateRequest{
				Dataset: "OMDB", Rows: 60, Method: sampling.MethodStochasticUS, K: 4, Seed: uint64(i),
			}, &info)
			if status != http.StatusCreated {
				fail("create", string(raw))
				return
			}
			id := info.ID
			var next nextResponse
			if status, raw := c.do("POST", "/v1/sessions/"+id+"/next", nil, &next); status != http.StatusOK {
				fail("next", string(raw))
				return
			}
			labels := make([]LabelingWire, len(next.Pairs))
			for j, p := range next.Pairs {
				labels[j] = LabelingWire{Pair: [2]int{p.A, p.B}}
			}
			if status, raw := c.do("POST", "/v1/sessions/"+id+"/submit", SubmitRequest{Labels: labels}, &info); status != http.StatusOK {
				fail("submit", string(raw))
				return
			}
			if info.Rounds != 1 {
				fail("submit", fmt.Sprintf("rounds = %d", info.Rounds))
				return
			}
			var snap struct {
				Snapshot string `json:"snapshot"`
			}
			if status, raw := c.do("POST", "/v1/sessions/"+id+"/snapshot", nil, &snap); status != http.StatusOK {
				fail("snapshot", string(raw))
				return
			}
			got, err := m.Store().Get(context.Background(), snap.Snapshot)
			if err != nil {
				fail("store", err)
				return
			}
			if len(got.History) != 1 {
				fail("store", fmt.Sprintf("history = %d rounds", len(got.History)))
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if live, _ := m.Counts(); live != sessions {
		t.Fatalf("live = %d, want %d", live, sessions)
	}
}

func TestServerIdleEvictionAndResumeOverHTTP(t *testing.T) {
	m, c, _ := newTestServer(t, Options{IdleTTL: time.Minute})
	clock := time.Unix(5000, 0)
	m.setNow(func() time.Time { return clock })

	var info Info
	c.expect(http.StatusCreated, "POST", "/v1/sessions",
		CreateRequest{CSV: testCSV, Method: sampling.MethodRandom, K: 3, Seed: 7}, &info)
	id := info.ID
	c.playHTTPRound(id)

	clock = clock.Add(2 * time.Minute)
	swept, err := m.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(swept) != 1 || swept[0] != id {
		t.Fatalf("Sweep = %v", swept)
	}
	snap, err := m.Store().Get(context.Background(), id)
	if err != nil {
		t.Fatalf("evicted session not recoverable: %v", err)
	}
	if len(snap.History) != 1 {
		t.Fatalf("snapshot lost the submitted round: %d", len(snap.History))
	}
	c.expect(http.StatusOK, "GET", "/v1/sessions/"+id, nil, &info)
	if !info.Parked {
		t.Fatalf("expected parked: %+v", info)
	}
	// Next request transparently resumes the parked session.
	info = c.playHTTPRound(id)
	if info.Parked || info.Rounds != 2 {
		t.Fatalf("after resume: %+v", info)
	}
}

func TestServerResumeAcrossManagers(t *testing.T) {
	store := persist.NewMemStore()
	_, c1, ts1 := newTestServer(t, Options{Store: store})

	var info Info
	c1.expect(http.StatusCreated, "POST", "/v1/sessions",
		CreateRequest{CSV: testCSV, Method: sampling.MethodRandom, K: 3, Seed: 7}, &info)
	c1.playHTTPRound(info.ID)
	c1.expect(http.StatusOK, "POST", "/v1/sessions/"+info.ID+"/snapshot", nil, nil)
	ts1.Close()

	// A brand-new manager over the same store resumes the checkpoint:
	// the client re-supplies the data source, the store supplies the
	// history and beliefs.
	_, c2, _ := newTestServer(t, Options{Store: store})
	var resumed Info
	c2.expect(http.StatusCreated, "POST", "/v1/sessions",
		CreateRequest{CSV: testCSV, Method: sampling.MethodRandom, K: 3, Seed: 7, Resume: info.ID}, &resumed)
	if resumed.Rounds != 1 {
		t.Fatalf("resumed: %+v", resumed)
	}
	got := c2.playHTTPRound(resumed.ID)
	if got.Rounds != 2 {
		t.Fatalf("after resumed round: %+v", got)
	}
	// Resuming a snapshot the store has never seen → 404.
	c2.expect(http.StatusNotFound, "POST", "/v1/sessions",
		CreateRequest{CSV: testCSV, Method: sampling.MethodRandom, K: 3, Seed: 7, Resume: "sess-none"}, nil)
}

func TestServerGracefulShutdownLosesNoSubmittedRound(t *testing.T) {
	m, c, _ := newTestServer(t, Options{})

	var ids []string
	for i := 0; i < 4; i++ {
		var info Info
		c.expect(http.StatusCreated, "POST", "/v1/sessions",
			CreateRequest{Dataset: "OMDB", Rows: 60, Method: sampling.MethodStochasticUS, K: 4, Seed: uint64(i)}, &info)
		c.playHTTPRound(info.ID)
		ids = append(ids, info.ID)
	}
	// One session is mid-round (presented, unsubmitted) at shutdown.
	c.expect(http.StatusOK, "POST", "/v1/sessions/"+ids[0]+"/next", nil, nil)

	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		snap, err := m.Store().Get(context.Background(), id)
		if err != nil {
			t.Fatalf("session %s not checkpointed at shutdown: %v", id, err)
		}
		if len(snap.History) != 1 {
			t.Fatalf("session %s: %d rounds in snapshot, want 1", id, len(snap.History))
		}
	}
	// The drained server answers every session request with 503.
	raw := c.expect(http.StatusServiceUnavailable, "POST", "/v1/sessions",
		CreateRequest{CSV: testCSV, Method: sampling.MethodRandom, K: 3}, nil)
	var e APIError
	if err := json.Unmarshal(raw, &e); err != nil || e.Kind != "shutting_down" {
		t.Fatalf("shutdown body %s (err %v)", raw, err)
	}
	c.expect(http.StatusServiceUnavailable, "POST", "/v1/sessions/"+ids[1]+"/next", nil, nil)
}
