package service

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"sync"
	"testing"

	"exptrain/internal/belief"
	"exptrain/internal/dataset"
	"exptrain/internal/game"
	"exptrain/internal/sampling"
)

func evalSpec(seed uint64) Spec {
	s := datasetSpec(seed)
	s.Eval = true
	return s
}

func TestManagerRoundsWithEval(t *testing.T) {
	m := NewManager(Options{})
	ctx := context.Background()
	info, err := m.Create(ctx, evalSpec(31))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		playRound(t, m, info.ID)
	}
	views, err := m.Rounds(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 3 {
		t.Fatalf("Rounds = %d views", len(views))
	}
	for i, v := range views {
		if v.Round != i {
			t.Fatalf("view %d has round %d", i, v.Round)
		}
		if v.Labeled == 0 {
			t.Fatalf("round %d has no labelings", i)
		}
		if v.Detection == nil {
			t.Fatalf("eval session round %d missing detection score", i)
		}
		if v.Detection.F1 < 0 || v.Detection.F1 > 1 {
			t.Fatalf("round %d F1 = %v", i, v.Detection.F1)
		}
		if v.MAE < 0 || v.MAE > 1 {
			t.Fatalf("round %d MAE = %v", i, v.MAE)
		}
	}

	// Non-eval sessions serve the same series without detection scores.
	plain, err := m.Create(ctx, datasetSpec(31))
	if err != nil {
		t.Fatal(err)
	}
	playRound(t, m, plain.ID)
	pviews, err := m.Rounds(ctx, plain.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(pviews) != 1 || pviews[0].Detection != nil {
		t.Fatalf("non-eval rounds = %+v, want one view without detection", pviews)
	}

	// CSV sources have no ground truth to evaluate against.
	bad := testSpec()
	bad.Eval = true
	if _, err := m.Create(ctx, bad); err == nil {
		t.Fatal("eval over a CSV source should error")
	}
}

func TestManagerRoundsSurviveEviction(t *testing.T) {
	m := NewManager(Options{})
	ctx := context.Background()
	info, err := m.Create(ctx, evalSpec(32))
	if err != nil {
		t.Fatal(err)
	}
	playRound(t, m, info.ID)
	playRound(t, m, info.ID)
	before, err := m.Rounds(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Evict(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	// Rounds transparently unparks; the series is rebuilt from the
	// snapshot's per-round records.
	after, err := m.Rounds(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("rounds after unpark = %d, want %d", len(after), len(before))
	}
	for i := range before {
		b, a := before[i], after[i]
		if a.Round != b.Round || a.Labeled != b.Labeled || a.Revised != b.Revised ||
			a.MAE != b.MAE || a.Payoff != b.Payoff {
			t.Fatalf("round %d changed across eviction: %+v vs %+v", i, a, b)
		}
		if a.Detection == nil || *a.Detection != *b.Detection {
			t.Fatalf("round %d detection changed across eviction: %+v vs %+v", i, a.Detection, b.Detection)
		}
	}
	// The unparked session keeps playing and extends the series.
	playRound(t, m, info.ID)
	extended, err := m.Rounds(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(extended) != len(before)+1 {
		t.Fatalf("rounds after resume+play = %d, want %d", len(extended), len(before)+1)
	}
}

func TestManagerRevisionThroughService(t *testing.T) {
	m := NewManager(Options{})
	ctx := context.Background()
	info, err := m.Create(ctx, datasetSpec(33))
	if err != nil {
		t.Fatal(err)
	}
	first := playRound(t, m, info.ID)

	pairs, err := m.Next(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Second round: label the fresh pairs and also correct one round-0
	// labeling to an abstention.
	labeled := []belief.Labeling{{Pair: dataset.NewPair(first[0].A, first[0].B), Abstained: true}}
	for _, p := range pairs {
		labeled = append(labeled, belief.Labeling{Pair: dataset.NewPair(p.A, p.B)})
	}
	if _, err := m.Submit(ctx, info.ID, UncheckedRound, labeled); err != nil {
		t.Fatalf("submit with revision: %v", err)
	}
	views, err := m.Rounds(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 2 || views[1].Revised != 1 {
		t.Fatalf("rounds = %+v, want round 1 with one revision", views)
	}
	if views[1].Labeled != len(pairs) {
		t.Fatalf("round 1 labeled %d fresh pairs, want %d", views[1].Labeled, len(pairs))
	}
}

func TestServerRoundsEndpoint(t *testing.T) {
	_, c, _ := newTestServer(t, Options{})
	var info Info
	c.expect(http.StatusCreated, "POST", "/v1/sessions",
		CreateRequest{Dataset: "OMDB", Rows: 60, Method: sampling.MethodStochasticUS, K: 4, Seed: 31, Eval: true}, &info)
	c.playHTTPRound(info.ID)
	c.playHTTPRound(info.ID)

	var rounds struct {
		Rounds []RoundView `json:"rounds"`
	}
	c.expect(http.StatusOK, "GET", "/v1/sessions/"+info.ID+"/rounds", nil, &rounds)
	if len(rounds.Rounds) != 2 {
		t.Fatalf("rounds over HTTP = %+v", rounds)
	}
	for i, v := range rounds.Rounds {
		if v.Round != i || v.Detection == nil {
			t.Fatalf("round view %d = %+v", i, v)
		}
	}

	// Without eval the detection field stays off the wire entirely.
	var plain Info
	c.expect(http.StatusCreated, "POST", "/v1/sessions",
		CreateRequest{CSV: testCSV, Method: sampling.MethodRandom, K: 3, Seed: 7}, &plain)
	c.playHTTPRound(plain.ID)
	raw := c.expect(http.StatusOK, "GET", "/v1/sessions/"+plain.ID+"/rounds", nil, nil)
	if len(raw) == 0 || bytes.Contains(raw, []byte(`"detection"`)) {
		t.Fatalf("non-eval rounds body leaked detection: %s", raw)
	}

	// Unknown session maps to 404.
	status, _ := c.do("GET", "/v1/sessions/sess-404/rounds", nil, nil)
	if status != http.StatusNotFound {
		t.Fatalf("rounds of unknown session: status %d", status)
	}
}

// TestObserverOrderedUnderConcurrentAccess hammers one session from
// many goroutines and then checks the per-session observer's event
// trace: the engine contract says events arrive in strict protocol
// order with round indices increasing and never repeated, no matter how
// requests interleave. Under -race this also proves the entry-lock
// serialization is what protects the observer.
func TestObserverOrderedUnderConcurrentAccess(t *testing.T) {
	m := NewManager(Options{})
	ctx := context.Background()
	info, err := m.Create(ctx, datasetSpec(34))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				pairs, err := m.Next(ctx, info.ID)
				if errors.Is(err, game.ErrPoolExhausted) {
					return
				}
				if errors.Is(err, game.ErrRoundPending) {
					// Another goroutine owns the round; steal the submit
					// with a full abstain. (Abstentions enter the label
					// history, so a late Submit for those pairs would be a
					// valid revision — here it just gets ErrNoRoundPending.)
					if _, err := m.Submit(ctx, info.ID, UncheckedRound, nil); err != nil &&
						!errors.Is(err, game.ErrNoRoundPending) {
						t.Errorf("steal submit: %v", err)
						return
					}
					continue
				}
				if err != nil {
					t.Errorf("next: %v", err)
					return
				}
				labeled := make([]belief.Labeling, len(pairs))
				for j, p := range pairs {
					labeled[j] = belief.Labeling{Pair: dataset.NewPair(p.A, p.B)}
				}
				if _, err := m.Submit(ctx, info.ID, UncheckedRound, labeled); err != nil &&
					!errors.Is(err, game.ErrNoRoundPending) {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	sh := m.shardFor(info.ID)
	sh.mu.Lock()
	e := sh.live[info.ID]
	sh.mu.Unlock()
	e.mu.Lock()
	events := append([]statEvent(nil), e.stats.events...)
	rounds := e.sess.Rounds()
	pending := e.sess.PendingCount() > 0
	e.mu.Unlock()

	if rounds == 0 {
		t.Fatal("concurrent drivers completed no rounds")
	}
	// The trace must be exactly round-by-round protocol order —
	// started, presented, submitted, updated, scored for t = 0, 1, ... —
	// with at most one trailing started+presented for an unsubmitted
	// round. Anything else means an event was dropped, duplicated or
	// reordered by the interleaving.
	want := make([]statEvent, 0, 5*rounds+2)
	for r := 0; r < rounds; r++ {
		want = append(want,
			statEvent{"started", r}, statEvent{"presented", r},
			statEvent{"submitted", r}, statEvent{"updated", r}, statEvent{"scored", r})
	}
	if pending {
		want = append(want, statEvent{"started", rounds}, statEvent{"presented", rounds})
	}
	if len(events) != len(want) {
		t.Fatalf("observer saw %d events, want %d (rounds=%d pending=%v)",
			len(events), len(want), rounds, pending)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, events[i], want[i])
		}
	}
	views, err := m.Rounds(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != rounds {
		t.Fatalf("Rounds = %d views for %d rounds", len(views), rounds)
	}
	for i, v := range views {
		if v.Round != i {
			t.Fatalf("view %d has round %d (duplicated or reordered)", i, v.Round)
		}
	}
}
