package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"exptrain/internal/belief"
	"exptrain/internal/game"
	"exptrain/internal/persist"
	"exptrain/internal/repair"
	"exptrain/internal/stats"
)

// Shard is one serving partition of the session space — the surface
// the Manager (the front-tier router) dispatches to after resolving a
// session id by rendezvous hash. Each shard owns a disjoint slice of
// the sessions with its own lock domain: live map, parked set, LRU
// eviction, degraded bookkeeping, labelpools, drain goroutines and
// stream wakeups never contend across shards. Session ids carry no
// shard marker; the hash of the id IS the routing, so a session is
// sticky to one shard for its whole life (including parked time).
type Shard interface {
	// ID is the shard's index in the manager's shard set.
	ID() int

	// Per-session operations, mirroring the Manager's routed API.
	Get(ctx context.Context, id string) (Info, error)
	Next(ctx context.Context, id string) ([]PairView, error)
	Submit(ctx context.Context, id string, round int, labeled []belief.Labeling) (Info, error)
	TopBelief(ctx context.Context, id string, k int) ([]HypothesisView, error)
	Repairs(ctx context.Context, id string, tau float64) ([]RepairView, error)
	Snapshot(ctx context.Context, id string) (string, error)
	Evict(ctx context.Context, id string) error
	Rounds(ctx context.Context, id string) ([]RoundView, error)
	StreamChunk(ctx context.Context, id string, from int) (StreamChunk, error)
	EnqueueSubmissions(ctx context.Context, id string, subs []Submission) ([]Ticket, error)
	Ticket(ctx context.Context, id, ticketID string) (Ticket, error)
	QueuedSubmissions(id string) int

	// Shard-wide operations the router fans out.
	List(ctx context.Context) ([]Info, error)
	Sweep(ctx context.Context) ([]string, error)
	Counts() (live, parked int)
	Health() ShardHealth
}

var _ Shard = (*shard)(nil)

// entry is one resident session. Its mutex serializes the session
// protocol; lastUsed is guarded by the owning shard's mutex (it is
// bumped during lookup, which already holds it).
type entry struct {
	mu       sync.Mutex
	id       string
	spec     Spec
	sess     *game.Session
	stats    *roundStats
	lastUsed time.Time
	// wal records per-round deltas for WAL-backed durability; nil when
	// the store takes no appends. Its take/restore/clear run under mu.
	wal *walRecorder
	// walBased marks that a base snapshot for this entry durably landed
	// in the store, so appended deltas alone restore the session (and a
	// successful append may heal the degraded mark); guarded by mu.
	walBased bool
	// gone marks the entry evicted or shut down. A goroutine that won
	// the entry lock after blocking must re-check it and retry the
	// lookup: the session now lives in the store, not here.
	gone bool
}

// shard is the concrete Shard: the state and mechanics that used to be
// the monolithic Manager, scoped to one partition.
//
// Lock order (unchanged from the monolith, now per shard): the shard
// mutex is only ever held for short map/metadata critical sections and
// never blocks on an entry lock (TryLock is allowed); entry locks may
// be held across session work and may take the shard mutex. That
// asymmetry is what makes per-session locking deadlock-free — and
// shard mutexes of different shards are never held together at all.
type shard struct {
	id int
	// opts is the shard's slice of the manager options: MaxSessions is
	// the per-shard resident bound (ceil of the manager bound over the
	// shard count); everything else is shared verbatim.
	opts  Options
	store persist.Store
	// appender is the store's round-append capability (nil when the
	// store is snapshot-only); when present, submits are made durable by
	// group-committed WAL appends instead of full snapshots.
	appender persist.RoundAppender
	// now is the clock; a test hook (set via Manager.setNow).
	now func() time.Time

	mu sync.Mutex
	// live holds resident sessions; guarded by mu.
	live map[string]*entry
	// parked maps evicted sessions to their spec (snapshot in store);
	// guarded by mu.
	parked map[string]Spec
	// draining rejects new work during Shutdown; guarded by mu.
	draining bool
	// degraded marks live session ids whose last checkpoint exhausted
	// retries; guarded by mu. Parking requires a successful checkpoint,
	// so a parked session is never degraded.
	degraded map[string]bool
	// storeFails counts store operations that exhausted the retry
	// policy; guarded by mu.
	storeFails uint64
	// storeErr is the most recent exhausted-retries store error, nil
	// once an operation succeeds again; guarded by mu.
	storeErr error
	// walAppended counts round deltas this shard durably appended
	// through the WAL; guarded by mu.
	walAppended uint64
	// rrng draws retry backoff jitter; guarded by mu. Seeded from
	// (RetrySeed, shard id) so a replica outage does not synchronize
	// backoff storms across shards.
	rrng *stats.RNG

	// poolMu guards pools: each session's labelpool, created on first
	// enqueue and keyed by session id, surviving park/unpark. Never
	// hold poolMu while taking mu or an entry or pool lock.
	poolMu sync.Mutex
	pools  map[string]*labelPool // guarded by poolMu
	// drainWG tracks in-flight labelpool drain goroutines so shutdown
	// can flush every queued submission before checkpointing.
	drainWG sync.WaitGroup

	// streamMu guards streams: per-session wakeup channels of attached
	// SSE streams. A leaf lock — safe to take under any other.
	streamMu sync.Mutex
	streams  map[string]map[chan struct{}]struct{} // guarded by streamMu
}

// newShard builds one shard. maxSessions is the per-shard resident
// bound; the jitter stream is seeded from (RetrySeed, id) so shards
// never share a backoff schedule.
func newShard(id int, opts Options, maxSessions int) *shard {
	opts.MaxSessions = maxSessions
	return &shard{
		id:       id,
		opts:     opts,
		store:    opts.Store,
		appender: persist.AppenderOf(opts.Store),
		now:      time.Now,
		live:     make(map[string]*entry),
		parked:   make(map[string]Spec),
		degraded: make(map[string]bool),
		rrng:     stats.NewRNG(jitterSeed(opts.RetrySeed, id)),
		pools:    make(map[string]*labelPool),
		streams:  make(map[string]map[chan struct{}]struct{}),
	}
}

// jitterSeed mixes the manager's RetrySeed with a shard id into that
// shard's backoff-jitter seed. A plain xor or add would leave nearby
// shards' streams correlated; the splitmix64 finalizer scatters them.
func jitterSeed(retrySeed uint64, shardID int) uint64 {
	h := retrySeed + uint64(shardID)*0x9E3779B97F4A7C15
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	if h == 0 {
		h = 1
	}
	return h
}

// ID implements Shard.
func (sh *shard) ID() int { return sh.id }

// setDraining flips the shard into drain mode (idempotent).
func (sh *shard) setDraining() {
	sh.mu.Lock()
	sh.draining = true
	sh.mu.Unlock()
}

// install registers a built entry, making room first if needed.
func (sh *shard) install(ctx context.Context, e *entry) error {
	for {
		sh.mu.Lock()
		if sh.draining {
			sh.mu.Unlock()
			return ErrShuttingDown
		}
		if len(sh.live) < sh.opts.MaxSessions {
			e.lastUsed = sh.now()
			sh.live[e.id] = e
			sh.mu.Unlock()
			return nil
		}
		victim := sh.victimLocked(nil)
		sh.mu.Unlock()
		if victim == nil {
			return ErrTooManySessions
		}
		if err := sh.evict(ctx, victim); err != nil {
			return fmt.Errorf("service: evicting %s for capacity: %w", victim.id, err)
		}
	}
}

// victimLocked picks the least-recently-used live entry (excluding
// keep) whose lock is immediately free — an entry mid-request is never
// evicted. Healthy entries are preferred over degraded ones: a degraded
// session's last checkpoint failed, so evicting it will likely fail
// again; it is chosen only when no healthy candidate exists, which
// doubles as its recovery path once the store heals. Caller holds
// sh.mu; the returned entry is locked.
func (sh *shard) victimLocked(keep *entry) *entry {
	var candidates []*entry
	for _, e := range sh.live {
		if e != keep {
			candidates = append(candidates, e)
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		di, dj := sh.degraded[candidates[i].id], sh.degraded[candidates[j].id]
		if di != dj {
			return !di // healthy first
		}
		return candidates[i].lastUsed.Before(candidates[j].lastUsed)
	})
	for _, e := range candidates {
		if e.mu.TryLock() {
			if e.gone {
				e.mu.Unlock()
				continue
			}
			return e
		}
	}
	return nil
}

// evict checkpoints a locked entry into the store and parks it. The
// entry lock is released before returning.
//
// The invariant this method protects: a session leaves the live map
// only after its checkpoint durably landed. If the Put exhausts the
// retry policy the session stays live and is marked degraded — serving
// continues from memory, nothing submitted is lost, and a later
// checkpoint (Sweep, Snapshot, Shutdown, or a forced eviction) retries
// and clears the mark.
func (sh *shard) evict(ctx context.Context, e *entry) error {
	defer e.mu.Unlock()
	// An unsubmitted round is dropped: it carries no annotator evidence,
	// and resuming rebuilds the pool from submitted history so its pairs
	// become presentable again.
	e.sess.DiscardPending()
	snap, err := e.sess.Snapshot()
	if err != nil {
		return err
	}
	if err := sh.storeRetry(ctx, "checkpointing "+e.id, func(ctx context.Context) error {
		return sh.store.Put(ctx, e.id, snap)
	}); err != nil {
		sh.setDegraded(e.id, true)
		return err
	}
	e.snapshotLandedLocked()
	e.gone = true
	sh.mu.Lock()
	delete(sh.live, e.id)
	delete(sh.degraded, e.id)
	sh.parked[e.id] = e.spec
	sh.mu.Unlock()
	return nil
}

// setDegraded flips a live session's degraded mark. Only live sessions
// carry the mark: parking requires the checkpoint to have succeeded.
func (sh *shard) setDegraded(id string, sick bool) {
	sh.mu.Lock()
	if sick {
		if _, ok := sh.live[id]; ok {
			sh.degraded[id] = true
		}
	} else {
		delete(sh.degraded, id)
	}
	sh.mu.Unlock()
}

// acquire returns the locked entry for id, transparently unparking an
// evicted session. The caller must unlock it. Lookup loops because an
// entry can be evicted between the map read and winning its lock.
func (sh *shard) acquire(ctx context.Context, id string) (*entry, error) {
	return sh.acquireOpt(ctx, id, false)
}

// acquireOpt is acquire with one extra caller: the labelpool drain,
// which must keep applying queued submissions while the shard drains
// (shutdown flushes the pools before checkpointing, so a submission
// accepted with a ticket is never silently dropped).
func (sh *shard) acquireOpt(ctx context.Context, id string, evenWhileDraining bool) (*entry, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sh.mu.Lock()
		if sh.draining && !evenWhileDraining {
			sh.mu.Unlock()
			return nil, ErrShuttingDown
		}
		if e, ok := sh.live[id]; ok {
			e.lastUsed = sh.now()
			sh.mu.Unlock()
			e.mu.Lock()
			if e.gone {
				e.mu.Unlock()
				continue // evicted while we waited; retry (now parked)
			}
			return e, nil
		}
		spec, ok := sh.parked[id]
		if !ok {
			sh.mu.Unlock()
			return nil, fmt.Errorf("%w: %q", ErrSessionNotFound, id)
		}
		// Unpark: insert a locked placeholder so concurrent requests for
		// the same id queue on its lock instead of double-resuming, then
		// do the store read and replay without holding the shard lock.
		e := &entry{id: id, spec: spec, lastUsed: sh.now()}
		e.mu.Lock() //etlint:ignore lockorder freshly allocated placeholder locked before publication in sh.live; nothing else can hold it, so the entry→shard edge of the order can't close a cycle
		delete(sh.parked, id)
		sh.live[id] = e
		over := len(sh.live) > sh.opts.MaxSessions
		sh.mu.Unlock()

		if over {
			// Over capacity after insertion: make room. Failure rolls the
			// placeholder back to parked.
			if err := sh.makeRoomFor(ctx, e); err != nil {
				sh.unparkFailed(e)
				return nil, err
			}
		}
		var snap *persist.Snapshot
		err := sh.storeRetry(ctx, "loading snapshot "+id, func(ctx context.Context) error {
			var gerr error
			snap, gerr = sh.store.Get(ctx, id)
			return gerr
		})
		if err == nil {
			var wrec *walRecorder
			if sh.appender != nil {
				wrec = &walRecorder{id: id}
			}
			var sess *game.Session
			var rs *roundStats
			sess, rs, err = buildSession(spec, snap, wrec)
			if err == nil {
				e.sess = sess
				e.stats = rs
				e.wal = wrec
				// The snapshot we just resumed from IS the base snapshot.
				e.walBased = wrec != nil
				return e, nil
			}
		}
		sh.unparkFailed(e)
		return nil, fmt.Errorf("service: resuming parked session %q: %w", id, err)
	}
}

// makeRoomFor evicts LRU entries other than keep until the shard is
// within capacity. Caller holds keep's lock.
func (sh *shard) makeRoomFor(ctx context.Context, keep *entry) error {
	for {
		sh.mu.Lock()
		if len(sh.live) <= sh.opts.MaxSessions {
			sh.mu.Unlock()
			return nil
		}
		victim := sh.victimLocked(keep)
		sh.mu.Unlock()
		if victim == nil {
			return ErrTooManySessions
		}
		if err := sh.evict(ctx, victim); err != nil {
			return err
		}
	}
}

// unparkFailed rolls a placeholder back to parked after a failed
// resume; the snapshot is still in the store.
func (sh *shard) unparkFailed(e *entry) {
	e.gone = true
	sh.mu.Lock()
	delete(sh.live, e.id)
	sh.parked[e.id] = e.spec
	sh.mu.Unlock()
	e.mu.Unlock()
}

// infoOf renders a locked (or freshly built) entry.
func (sh *shard) infoOf(e *entry, parked bool) Info {
	sh.mu.Lock()
	degraded := sh.degraded[e.id]
	sh.mu.Unlock()
	info := Info{
		ID:       e.id,
		Method:   e.spec.Method.Resolve(),
		K:        e.spec.K,
		Parked:   parked,
		Degraded: degraded,
	}
	if e.sess != nil {
		info.Rounds = e.sess.Rounds()
		info.Pending = e.sess.PendingCount()
		info.Remaining = e.sess.RemainingPairs()
		info.Rows = e.sess.Relation().NumRows()
		info.Space = e.sess.Belief().Size()
	}
	return info
}

// Get implements Shard. A parked session is reported from its parked
// metadata without resuming it.
func (sh *shard) Get(ctx context.Context, id string) (Info, error) {
	if err := ctx.Err(); err != nil {
		return Info{}, err
	}
	sh.mu.Lock()
	if spec, ok := sh.parked[id]; ok {
		sh.mu.Unlock()
		return Info{ID: id, Method: spec.Method.Resolve(), K: spec.K, Parked: true}, nil
	}
	sh.mu.Unlock()
	e, err := sh.acquire(ctx, id)
	if err != nil {
		return Info{}, err
	}
	defer e.mu.Unlock()
	return sh.infoOf(e, false), nil
}

// List implements Shard: every session homed here, live and parked,
// ordered by id.
func (sh *shard) List(ctx context.Context) ([]Info, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sh.mu.Lock()
	out := make([]Info, 0, len(sh.live)+len(sh.parked))
	for _, e := range sh.live {
		// Metadata only — reading counters without the entry lock would
		// race with in-flight rounds.
		out = append(out, Info{ID: e.id, Method: e.spec.Method.Resolve(), K: e.spec.K, Degraded: sh.degraded[e.id]})
	}
	for id, spec := range sh.parked {
		out = append(out, Info{ID: id, Method: spec.Method.Resolve(), K: spec.K, Parked: true})
	}
	sh.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Next implements Shard: presents the session's next round of pairs.
func (sh *shard) Next(ctx context.Context, id string) ([]PairView, error) {
	e, err := sh.acquire(ctx, id)
	if err != nil {
		return nil, err
	}
	defer e.mu.Unlock()
	pairs, err := e.sess.NextContext(ctx)
	if err != nil {
		return nil, err
	}
	sh.notifyStreams(id)
	return renderPairs(e.sess.Relation(), pairs), nil
}

// Submit implements Shard: consumes the pending round's annotations
// under the Manager's idempotency contract (see Manager.Submit).
func (sh *shard) Submit(ctx context.Context, id string, round int, labeled []belief.Labeling) (Info, error) {
	e, err := sh.acquire(ctx, id)
	if err != nil {
		return Info{}, err
	}
	defer e.mu.Unlock()
	if round != UncheckedRound {
		cur := e.sess.Rounds()
		switch {
		case round > cur:
			return Info{}, fmt.Errorf("%w: round %d is ahead of the current round %d", ErrRoundMismatch, round, cur)
		case round < cur:
			rec := e.sess.Records()[round]
			if labelsDigest(labeled, nil) == labelsDigest(rec.Labeled, rec.Revisions) {
				// Identical replay of an applied round: the first attempt's
				// response was lost; report success again, change nothing.
				return sh.infoOf(e, false), nil
			}
			return Info{}, fmt.Errorf("%w: round %d was already applied with different labels (current round %d)", ErrRoundMismatch, round, cur)
		}
	}
	if err := e.sess.SubmitContext(ctx, labeled); err != nil {
		return Info{}, err
	}
	// WAL-era durability: the submitted round's delta rides a group
	// commit before the submit acks. Failure degrades the session (the
	// round lives on in memory and in the recorder's backlog) rather
	// than failing a submit that already applied.
	_ = sh.flushWal(ctx, e)
	sh.notifyStreams(id)
	// A direct submit can fill the gap a parked labelpool drain stalled
	// on; give it another chance.
	if p := sh.peekPool(id); p != nil {
		sh.kickDrain(p)
	}
	return sh.infoOf(e, false), nil
}

// TopBelief implements Shard.
func (sh *shard) TopBelief(ctx context.Context, id string, k int) ([]HypothesisView, error) {
	e, err := sh.acquire(ctx, id)
	if err != nil {
		return nil, err
	}
	defer e.mu.Unlock()
	if k <= 0 {
		k = 10
	}
	b := e.sess.Belief()
	names := e.sess.Relation().Schema().Names()
	var out []HypothesisView
	for _, i := range b.TopK(k) {
		lo, hi := b.CredibleInterval(i, 0.9)
		out = append(out, HypothesisView{
			FD:         b.Space().FD(i).Render(names),
			Confidence: b.Confidence(i),
			CILow:      lo,
			CIHigh:     hi,
		})
	}
	return out, nil
}

// Repairs implements Shard.
func (sh *shard) Repairs(ctx context.Context, id string, tau float64) ([]RepairView, error) {
	e, err := sh.acquire(ctx, id)
	if err != nil {
		return nil, err
	}
	defer e.mu.Unlock()
	if tau <= 0 {
		tau = 0.5
	}
	b := e.sess.Belief()
	var believed []repair.BelievedFD
	for _, f := range b.BelievedFDs(tau) {
		i, ok := b.Space().Index(f)
		if !ok {
			continue
		}
		believed = append(believed, repair.BelievedFD{FD: f, Confidence: b.Confidence(i)})
	}
	rel := e.sess.Relation()
	suggestions, err := repair.Suggest(rel, believed, repair.Config{})
	if err != nil {
		return nil, err
	}
	names := rel.Schema().Names()
	out := make([]RepairView, len(suggestions))
	for i, s := range suggestions {
		out[i] = RepairView{
			Row:        s.Row,
			Attr:       names[s.Attr],
			Old:        s.Old,
			New:        s.New,
			Confidence: s.Confidence,
			Source:     s.Source.Render(names),
		}
	}
	return out, nil
}

// Snapshot implements Shard: checkpoints the session into the store
// under its own id and returns that id. The session stays live.
func (sh *shard) Snapshot(ctx context.Context, id string) (string, error) {
	e, err := sh.acquire(ctx, id)
	if err != nil {
		return "", err
	}
	defer e.mu.Unlock()
	snap, err := e.sess.Snapshot()
	if err != nil {
		return "", err
	}
	if err := sh.storeRetry(ctx, "checkpointing "+e.id, func(ctx context.Context) error {
		return sh.store.Put(ctx, e.id, snap)
	}); err != nil {
		sh.setDegraded(e.id, true)
		return "", err
	}
	// A successful explicit checkpoint heals a degraded session: its
	// state is durable again.
	e.snapshotLandedLocked()
	sh.setDegraded(e.id, false)
	return e.id, nil
}

// Evict implements Shard: checkpoints the session and parks it,
// freeing its memory. The next access transparently resumes it.
func (sh *shard) Evict(ctx context.Context, id string) error {
	e, err := sh.acquire(ctx, id)
	if err != nil {
		return err
	}
	return sh.evict(ctx, e) // releases the lock
}

// Rounds implements Shard: the session's per-round measurement series.
func (sh *shard) Rounds(ctx context.Context, id string) ([]RoundView, error) {
	e, err := sh.acquire(ctx, id)
	if err != nil {
		return nil, err
	}
	defer e.mu.Unlock()
	return append([]RoundView(nil), e.stats.rounds...), nil
}

// Sweep implements Shard: parks every session idle for at least the
// IdleTTL and returns the parked ids. A failed eviction leaves that
// session live and degraded but does not stop the sweep — the
// remaining idle sessions still get their chance to park, and a later
// sweep retries the degraded ones (their recovery path once the store
// heals). All failures are joined into the returned error.
func (sh *shard) Sweep(ctx context.Context) ([]string, error) {
	sh.mu.Lock()
	cutoff := sh.now().Add(-sh.opts.IdleTTL)
	var idle []*entry
	for _, e := range sh.live {
		if e.lastUsed.Before(cutoff) {
			idle = append(idle, e)
		}
	}
	sh.mu.Unlock()
	var swept []string
	var errs []error
	for _, e := range idle {
		if err := ctx.Err(); err != nil {
			errs = append(errs, err)
			break
		}
		if !e.mu.TryLock() {
			continue // mid-request: not idle after all
		}
		if e.gone {
			e.mu.Unlock()
			continue
		}
		sh.mu.Lock()
		still := sh.live[e.id] == e && !e.lastUsed.After(cutoff)
		sh.mu.Unlock()
		if !still {
			e.mu.Unlock()
			continue
		}
		if err := sh.evict(ctx, e); err != nil {
			errs = append(errs, err)
			continue
		}
		swept = append(swept, e.id)
	}
	sort.Strings(swept)
	return swept, errors.Join(errs...)
}

// Counts implements Shard.
func (sh *shard) Counts() (live, parked int) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.live), len(sh.parked)
}

// shutdown drains this shard: flush the labelpools (queued submissions
// that earned a ticket are applied, not dropped), wait out the drain
// goroutines, then checkpoint every live session. The caller must have
// called setDraining first — the flag must be observable before the
// pools flush, or an enqueue racing shutdown could slip items in after
// its pool drained (see EnqueueSubmissions).
func (sh *shard) shutdown(ctx context.Context) error {
	// Flush the labelpools before checkpointing: drains run under
	// acquireOpt(evenWhileDraining), so every queued round lands in its
	// session before that session's snapshot is taken.
	sh.flushPools()
	sh.drainWG.Wait()

	sh.mu.Lock()
	entries := make([]*entry, 0, len(sh.live))
	for _, e := range sh.live {
		entries = append(entries, e)
	}
	sh.mu.Unlock()

	var errs []error
	for _, e := range entries {
		e.mu.Lock()
		if e.gone {
			e.mu.Unlock()
			continue
		}
		if err := sh.evict(ctx, e); err != nil { // releases the lock
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
