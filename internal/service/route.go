package service

// Rendezvous (highest-random-weight) routing: every session id is
// scored once against every shard and lives on the shard with the
// highest score. The properties the service leans on:
//
//   - Sticky: the score depends only on (id, shard index), so a fixed
//     shard count routes an id identically forever — a session's lock
//     domain, labelpool and streams all agree on its home shard.
//   - Minimal movement: growing N shards to N+1 leaves the first N
//     scores of every id untouched, so an id moves only when the NEW
//     shard wins — about 1/(N+1) of the keyspace, and it moves only
//     onto the new shard. No ring maintenance, no token metadata.
//
// Both properties are pinned by TestRendezvousRouting.

// rendezvousScore scores one (session id, shard index) pair: FNV-1a
// over the id bytes, the shard index folded in, then a splitmix64-style
// finalizer so per-shard scores of one id are decorrelated (raw FNV of
// id+index would make adjacent shards' scores nearly collinear).
func rendezvousScore(id string, shard int) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	h ^= uint64(shard)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

// pickShard returns the winning shard index for id among n shards:
// highest rendezvous score, ties to the lowest index.
func pickShard(id string, n int) int {
	if n <= 1 {
		return 0
	}
	best, bestScore := 0, rendezvousScore(id, 0)
	for i := 1; i < n; i++ {
		if s := rendezvousScore(id, i); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// shardFor resolves a session id to its home shard.
func (m *Manager) shardFor(id string) *shard {
	return m.shards[pickShard(id, len(m.shards))]
}
