package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"exptrain/internal/belief"
	"exptrain/internal/datagen"
	"exptrain/internal/dataset"
	"exptrain/internal/errgen"
	"exptrain/internal/fd"
	"exptrain/internal/game"
	"exptrain/internal/persist"
	"exptrain/internal/repair"
	"exptrain/internal/sampling"
	"exptrain/internal/stats"
)

// Source says where a session's relation comes from. Exactly one of
// CSV or Dataset must be set. The source is kept for the session's
// whole life: an evicted session's relation is rebuilt from it when the
// session is resumed (snapshots deliberately do not embed relations).
type Source struct {
	// Dataset is a synthetic paper dataset name ("OMDB", "AIRPORT",
	// "Hospital", "Tax"); Rows and Seed make the build deterministic.
	Dataset string
	Rows    int
	Seed    uint64
	// CSV is an uploaded relation (header row + records).
	CSV []byte
}

// build materializes the relation.
func (s Source) build() (*dataset.Relation, error) {
	rel, _, err := s.materialize()
	return rel, err
}

// materialize builds the relation and, for synthetic sources, also
// returns the generated dataset (its exact FDs are the evaluator's
// injection targets). ds is nil for CSV sources.
func (s Source) materialize() (rel *dataset.Relation, ds *datagen.Dataset, err error) {
	switch {
	case len(s.CSV) > 0 && s.Dataset != "":
		return nil, nil, fmt.Errorf("service: source has both CSV and dataset %q", s.Dataset)
	case len(s.CSV) > 0:
		rel, err = dataset.ReadCSV(bytes.NewReader(s.CSV))
		return rel, nil, err
	case s.Dataset != "":
		gen, err := datagen.ByName(s.Dataset)
		if err != nil {
			return nil, nil, err
		}
		rows := s.Rows
		if rows <= 0 {
			rows = 240
		}
		d := gen(rows, s.Seed)
		return d.Rel, d, nil
	default:
		return nil, nil, fmt.Errorf("service: source needs a dataset name or CSV data")
	}
}

// Spec configures one hosted session.
type Spec struct {
	Source Source
	// Method is the learner's response strategy (MethodDefault →
	// StochasticUS).
	Method sampling.Method
	// Gamma is the stochastic temperature (DefaultGamma when zero).
	Gamma float64
	// K is pairs per round (game.Session default when zero).
	K int
	// MaxLHS bounds the enumerated hypothesis space (default 2).
	MaxLHS int
	// MaxFDs truncates the space (0 = no cap).
	MaxFDs int
	// Seed drives pool construction and stochastic selection.
	Seed uint64
	// Eval turns on per-round held-out detection scoring (§C.1's F1
	// series): errors are injected into the generated relation at the
	// given Degree against the dataset's exact FDs, 30% of the rows are
	// held out, and every submitted round scores the learner's believed
	// model on that split. Requires a synthetic Dataset source — a CSV
	// upload has no ground-truth FDs to injure or score against.
	Eval bool
	// Degree is the injected violation degree in (0, 1) when Eval is
	// set (default 0.1).
	Degree float64
}

// Info is a session's externally visible state.
type Info struct {
	ID        string          `json:"id"`
	Method    sampling.Method `json:"method"`
	K         int             `json:"k"`
	Rounds    int             `json:"rounds"`
	Pending   int             `json:"pending"`
	Remaining int             `json:"remaining"`
	Parked    bool            `json:"parked"`
	// Degraded marks a live session whose last checkpoint exhausted the
	// store retry policy: its state exists only in memory until a later
	// checkpoint succeeds. Degraded sessions keep serving rounds and are
	// skipped by eviction while any healthy victim exists.
	Degraded bool `json:"degraded,omitempty"`
	Rows     int  `json:"rows"`
	Space    int  `json:"space"`
}

// PairView is one presented pair with its rendered tuples, so a client
// needs no separate data fetch to show the annotator the rows.
type PairView struct {
	A      int      `json:"a"`
	B      int      `json:"b"`
	ATuple []string `json:"a_tuple"`
	BTuple []string `json:"b_tuple"`
}

// HypothesisView is one FD of the learner's belief, rendered.
type HypothesisView struct {
	FD         string  `json:"fd"`
	Confidence float64 `json:"confidence"`
	CILow      float64 `json:"ci_low"`
	CIHigh     float64 `json:"ci_high"`
}

// RepairView is one suggested cell repair, rendered.
type RepairView struct {
	Row        int     `json:"row"`
	Attr       string  `json:"attr"`
	Old        string  `json:"old"`
	New        string  `json:"new"`
	Confidence float64 `json:"confidence"`
	Source     string  `json:"source"`
}

// Options tunes the manager.
type Options struct {
	// MaxSessions bounds resident sessions (default 128). At the bound,
	// creating or unparking first tries to evict the least-recently-used
	// idle session; if none is evictable the request fails with
	// ErrTooManySessions.
	MaxSessions int
	// IdleTTL parks sessions idle at least this long on each Sweep
	// (default 15 minutes).
	IdleTTL time.Duration
	// Store receives eviction and shutdown checkpoints (default: a
	// fresh in-memory store).
	Store persist.Store
	// Retry bounds retries of store operations (zero value → defaults:
	// 4 attempts, 5ms base backoff, 250ms cap).
	Retry RetryPolicy
	// RetrySeed seeds the backoff jitter stream (default 1). Fixing it
	// makes retry schedules reproducible in fault-injection tests.
	RetrySeed uint64
	// MaxQueuedSubmissions bounds each session's labelpool queue
	// (default 64). Enqueueing beyond it fails with
	// ErrSubmissionBacklog (HTTP 429 + Retry-After).
	MaxQueuedSubmissions int
	// DrainBatch caps how many queued rounds one drain applies under a
	// single entry-lock acquisition (default 16) — large enough to
	// amortize locking and checkpoint scheduling, small enough that
	// interactive requests interleave with a deep backlog.
	DrainBatch int
	// CheckpointEvery, when positive, has the labelpool drain
	// checkpoint a session after that many applied rounds, amortizing
	// durability across the batch instead of paying a snapshot per
	// round (0 = checkpoint only on park/shutdown/explicit snapshot).
	CheckpointEvery int
}

func (o Options) withDefaults() Options {
	if o.MaxSessions <= 0 {
		o.MaxSessions = 128
	}
	if o.IdleTTL <= 0 {
		o.IdleTTL = 15 * time.Minute
	}
	if o.Store == nil {
		o.Store = persist.NewMemStore()
	}
	o.Retry = o.Retry.withDefaults()
	if o.RetrySeed == 0 {
		o.RetrySeed = 1
	}
	if o.MaxQueuedSubmissions <= 0 {
		o.MaxQueuedSubmissions = 64
	}
	if o.DrainBatch <= 0 {
		o.DrainBatch = 16
	}
	return o
}

// entry is one resident session. Its mutex serializes the session
// protocol; lastUsed is guarded by the manager's mutex (it is bumped
// during lookup, which already holds it).
type entry struct {
	mu       sync.Mutex
	id       string
	spec     Spec
	sess     *game.Session
	stats    *roundStats
	lastUsed time.Time
	// gone marks the entry evicted or shut down. A goroutine that won
	// the entry lock after blocking must re-check it and retry the
	// lookup: the session now lives in the store, not here.
	gone bool
}

// Manager hosts the sessions. All methods are safe for concurrent use.
//
// Lock order: the manager mutex is only ever held for short map/metadata
// critical sections and never blocks on an entry lock (TryLock is
// allowed); entry locks may be held across session work and may take
// the manager mutex. That asymmetry is what makes per-session locking
// deadlock-free.
type Manager struct {
	opts  Options
	store persist.Store
	// now is the clock; a test hook.
	now func() time.Time

	mu sync.Mutex
	// live holds resident sessions; guarded by mu.
	live map[string]*entry
	// parked maps evicted sessions to their spec (snapshot in store);
	// guarded by mu.
	parked map[string]Spec
	// seq numbers sessions; guarded by mu.
	seq uint64
	// draining rejects new work during Shutdown; guarded by mu.
	draining bool
	// degraded marks live session ids whose last checkpoint exhausted
	// retries; guarded by mu. Parking requires a successful checkpoint,
	// so a parked session is never degraded.
	degraded map[string]bool
	// storeFails counts store operations that exhausted the retry
	// policy; guarded by mu.
	storeFails uint64
	// storeErr is the most recent exhausted-retries store error, nil
	// once an operation succeeds again; guarded by mu.
	storeErr error
	// rrng draws retry backoff jitter; guarded by mu.
	rrng *stats.RNG

	// poolMu guards pools: each session's labelpool, created on first
	// enqueue and keyed by session id, surviving park/unpark. Never
	// hold poolMu while taking mu or an entry or pool lock.
	poolMu sync.Mutex
	pools  map[string]*labelPool
	// drainWG tracks in-flight labelpool drain goroutines so Shutdown
	// can flush every queued submission before checkpointing.
	drainWG sync.WaitGroup

	// streamMu guards streams: per-session wakeup channels of attached
	// SSE streams. A leaf lock — safe to take under any other.
	streamMu sync.Mutex
	streams  map[string]map[chan struct{}]struct{}
	// drainSignal is closed when Shutdown begins, so streams close
	// promptly instead of waiting out a heartbeat.
	drainSignal chan struct{}
}

// NewManager builds a manager.
func NewManager(opts Options) *Manager {
	opts = opts.withDefaults()
	return &Manager{
		opts:        opts,
		store:       opts.Store,
		now:         time.Now,
		live:        make(map[string]*entry),
		parked:      make(map[string]Spec),
		degraded:    make(map[string]bool),
		rrng:        stats.NewRNG(opts.RetrySeed),
		pools:       make(map[string]*labelPool),
		streams:     make(map[string]map[chan struct{}]struct{}),
		drainSignal: make(chan struct{}),
	}
}

// Store returns the checkpoint store.
func (m *Manager) Store() persist.Store { return m.store }

// buildSession constructs the game.Session for a spec, optionally
// resuming from a snapshot, along with its stats-collecting observer.
// Everything is deterministic in the spec (injection, split and pool
// all derive from spec.Seed), so an evicted session unparks onto an
// identical world.
func buildSession(spec Spec, snap *persist.Snapshot) (*game.Session, *roundStats, error) {
	rel, ds, err := spec.Source.materialize()
	if err != nil {
		return nil, nil, err
	}
	sampler, err := sampling.New(spec.Method, spec.Gamma)
	if err != nil {
		return nil, nil, err
	}
	rs := &roundStats{eval: spec.Eval}
	cfg := game.SessionConfig{
		Relation: rel,
		Sampler:  sampler,
		K:        spec.K,
		Seed:     spec.Seed,
		Observer: rs,
	}
	if spec.Eval {
		if ds == nil {
			return nil, nil, fmt.Errorf("service: eval needs a synthetic dataset source (no ground-truth FDs for CSV data)")
		}
		degree := spec.Degree
		if degree == 0 {
			degree = 0.1
		}
		injected, err := errgen.InjectDegree(rel, errgen.DegreeConfig{
			FDs:        ds.ExactFDs,
			Degree:     degree,
			MaxChanges: rel.NumRows() / 3,
			Seed:       spec.Seed ^ 0xE44,
		})
		if err != nil {
			return nil, nil, err
		}
		rel = injected.Rel
		cfg.Relation = rel
		// 30% held-out test split, as in the paper's evaluation.
		rng := stats.NewRNG(spec.Seed ^ 0x9A3E)
		_, testRows := rel.Split(rng.Split(), 0.7)
		dirty := make(map[int]struct{})
		for newIdx, orig := range testRows {
			if _, bad := injected.DirtyRows[orig]; bad {
				dirty[newIdx] = struct{}{}
			}
		}
		cfg.Eval = &game.Evaluator{TestRel: rel.Subset(testRows), DirtyRows: dirty}
	}
	if snap != nil {
		sess, err := game.ResumeSession(snap, cfg)
		if err != nil {
			return nil, nil, err
		}
		// Restored rounds replay without observer events; backfill them.
		rs.prime(sess.Records())
		return sess, rs, nil
	}
	maxLHS := spec.MaxLHS
	if maxLHS <= 0 {
		maxLHS = 2
	}
	fds, err := fd.Enumerate(fd.SpaceConfig{
		Arity:  rel.Schema().Arity(),
		MaxLHS: maxLHS,
		MaxFDs: spec.MaxFDs,
	})
	if err != nil {
		return nil, nil, err
	}
	space, err := fd.NewSpace(fds)
	if err != nil {
		return nil, nil, err
	}
	cfg.Space = space
	sess, err := game.NewSession(cfg)
	if err != nil {
		return nil, nil, err
	}
	return sess, rs, nil
}

// Create builds and registers a new session, evicting an idle session
// if the manager is full. The returned Info carries the new id.
func (m *Manager) Create(ctx context.Context, spec Spec) (Info, error) {
	if err := ctx.Err(); err != nil {
		return Info{}, err
	}
	sess, rs, err := buildSession(spec, nil)
	if err != nil {
		return Info{}, err
	}
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return Info{}, ErrShuttingDown
	}
	m.seq++
	id := fmt.Sprintf("sess-%d", m.seq)
	m.mu.Unlock()

	e := &entry{id: id, spec: spec, sess: sess, stats: rs}
	if err := m.install(ctx, e); err != nil {
		return Info{}, err
	}
	return m.infoOf(e, false), nil
}

// Resume registers a new session restored from a snapshot previously
// saved in the store (for example by a prior process before shutdown).
// The snapshot's history is replayed against a relation rebuilt from
// spec.Source, which must describe the same data.
func (m *Manager) Resume(ctx context.Context, snapshotID string, spec Spec) (Info, error) {
	if err := ctx.Err(); err != nil {
		return Info{}, err
	}
	var snap *persist.Snapshot
	err := m.storeRetry(ctx, "loading snapshot "+snapshotID, func(ctx context.Context) error {
		var gerr error
		snap, gerr = m.store.Get(ctx, snapshotID)
		return gerr
	})
	if err != nil {
		return Info{}, err
	}
	sess, rs, err := buildSession(spec, snap)
	if err != nil {
		return Info{}, err
	}
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return Info{}, ErrShuttingDown
	}
	m.seq++
	id := fmt.Sprintf("sess-%d", m.seq)
	m.mu.Unlock()

	e := &entry{id: id, spec: spec, sess: sess, stats: rs}
	if err := m.install(ctx, e); err != nil {
		return Info{}, err
	}
	return m.infoOf(e, false), nil
}

// install registers a built entry, making room first if needed.
func (m *Manager) install(ctx context.Context, e *entry) error {
	for {
		m.mu.Lock()
		if m.draining {
			m.mu.Unlock()
			return ErrShuttingDown
		}
		if len(m.live) < m.opts.MaxSessions {
			e.lastUsed = m.now()
			m.live[e.id] = e
			m.mu.Unlock()
			return nil
		}
		victim := m.victimLocked(nil)
		m.mu.Unlock()
		if victim == nil {
			return ErrTooManySessions
		}
		if err := m.evict(ctx, victim); err != nil {
			return fmt.Errorf("service: evicting %s for capacity: %w", victim.id, err)
		}
	}
}

// victimLocked picks the least-recently-used live entry (excluding
// keep) whose lock is immediately free — an entry mid-request is never
// evicted. Healthy entries are preferred over degraded ones: a degraded
// session's last checkpoint failed, so evicting it will likely fail
// again; it is chosen only when no healthy candidate exists, which
// doubles as its recovery path once the store heals. Caller holds m.mu;
// the returned entry is locked.
func (m *Manager) victimLocked(keep *entry) *entry {
	var candidates []*entry
	for _, e := range m.live {
		if e != keep {
			candidates = append(candidates, e)
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		di, dj := m.degraded[candidates[i].id], m.degraded[candidates[j].id]
		if di != dj {
			return !di // healthy first
		}
		return candidates[i].lastUsed.Before(candidates[j].lastUsed)
	})
	for _, e := range candidates {
		if e.mu.TryLock() {
			if e.gone {
				e.mu.Unlock()
				continue
			}
			return e
		}
	}
	return nil
}

// evict checkpoints a locked entry into the store and parks it. The
// entry lock is released before returning.
//
// The invariant this method protects: a session leaves the live map
// only after its checkpoint durably landed. If the Put exhausts the
// retry policy the session stays live and is marked degraded — serving
// continues from memory, nothing submitted is lost, and a later
// checkpoint (Sweep, Snapshot, Shutdown, or a forced eviction) retries
// and clears the mark.
func (m *Manager) evict(ctx context.Context, e *entry) error {
	defer e.mu.Unlock()
	// An unsubmitted round is dropped: it carries no annotator evidence,
	// and resuming rebuilds the pool from submitted history so its pairs
	// become presentable again.
	e.sess.DiscardPending()
	snap, err := e.sess.Snapshot()
	if err != nil {
		return err
	}
	if err := m.storeRetry(ctx, "checkpointing "+e.id, func(ctx context.Context) error {
		return m.store.Put(ctx, e.id, snap)
	}); err != nil {
		m.setDegraded(e.id, true)
		return err
	}
	e.gone = true
	m.mu.Lock()
	delete(m.live, e.id)
	delete(m.degraded, e.id)
	m.parked[e.id] = e.spec
	m.mu.Unlock()
	return nil
}

// setDegraded flips a live session's degraded mark. Only live sessions
// carry the mark: parking requires the checkpoint to have succeeded.
func (m *Manager) setDegraded(id string, sick bool) {
	m.mu.Lock()
	if sick {
		if _, ok := m.live[id]; ok {
			m.degraded[id] = true
		}
	} else {
		delete(m.degraded, id)
	}
	m.mu.Unlock()
}

// acquire returns the locked entry for id, transparently unparking an
// evicted session. The caller must unlock it. Lookup loops because an
// entry can be evicted between the map read and winning its lock.
func (m *Manager) acquire(ctx context.Context, id string) (*entry, error) {
	return m.acquireOpt(ctx, id, false)
}

// acquireOpt is acquire with one extra caller: the labelpool drain,
// which must keep applying queued submissions while the manager drains
// (Shutdown flushes the pools before checkpointing, so a submission
// accepted with a ticket is never silently dropped).
func (m *Manager) acquireOpt(ctx context.Context, id string, evenWhileDraining bool) (*entry, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m.mu.Lock()
		if m.draining && !evenWhileDraining {
			m.mu.Unlock()
			return nil, ErrShuttingDown
		}
		if e, ok := m.live[id]; ok {
			e.lastUsed = m.now()
			m.mu.Unlock()
			e.mu.Lock()
			if e.gone {
				e.mu.Unlock()
				continue // evicted while we waited; retry (now parked)
			}
			return e, nil
		}
		spec, ok := m.parked[id]
		if !ok {
			m.mu.Unlock()
			return nil, fmt.Errorf("%w: %q", ErrSessionNotFound, id)
		}
		// Unpark: insert a locked placeholder so concurrent requests for
		// the same id queue on its lock instead of double-resuming, then
		// do the store read and replay without holding the manager lock.
		e := &entry{id: id, spec: spec, lastUsed: m.now()}
		e.mu.Lock()
		delete(m.parked, id)
		m.live[id] = e
		m.mu.Unlock()

		if len(m.live) > m.opts.MaxSessions {
			// Over capacity after insertion: make room. Failure rolls the
			// placeholder back to parked.
			if err := m.makeRoomFor(ctx, e); err != nil {
				m.unparkFailed(e)
				return nil, err
			}
		}
		var snap *persist.Snapshot
		err := m.storeRetry(ctx, "loading snapshot "+id, func(ctx context.Context) error {
			var gerr error
			snap, gerr = m.store.Get(ctx, id)
			return gerr
		})
		if err == nil {
			var sess *game.Session
			var rs *roundStats
			sess, rs, err = buildSession(spec, snap)
			if err == nil {
				e.sess = sess
				e.stats = rs
				return e, nil
			}
		}
		m.unparkFailed(e)
		return nil, fmt.Errorf("service: resuming parked session %q: %w", id, err)
	}
}

// makeRoomFor evicts LRU entries other than keep until the manager is
// within capacity. Caller holds keep's lock.
func (m *Manager) makeRoomFor(ctx context.Context, keep *entry) error {
	for {
		m.mu.Lock()
		if len(m.live) <= m.opts.MaxSessions {
			m.mu.Unlock()
			return nil
		}
		victim := m.victimLocked(keep)
		m.mu.Unlock()
		if victim == nil {
			return ErrTooManySessions
		}
		if err := m.evict(ctx, victim); err != nil {
			return err
		}
	}
}

// unparkFailed rolls a placeholder back to parked after a failed
// resume; the snapshot is still in the store.
func (m *Manager) unparkFailed(e *entry) {
	e.gone = true
	m.mu.Lock()
	delete(m.live, e.id)
	m.parked[e.id] = e.spec
	m.mu.Unlock()
	e.mu.Unlock()
}

// infoOf renders a locked (or freshly built) entry.
func (m *Manager) infoOf(e *entry, parked bool) Info {
	m.mu.Lock()
	degraded := m.degraded[e.id]
	m.mu.Unlock()
	info := Info{
		ID:       e.id,
		Method:   e.spec.Method.Resolve(),
		K:        e.spec.K,
		Parked:   parked,
		Degraded: degraded,
	}
	if e.sess != nil {
		info.Rounds = e.sess.Rounds()
		info.Pending = e.sess.PendingCount()
		info.Remaining = e.sess.RemainingPairs()
		info.Rows = e.sess.Relation().NumRows()
		info.Space = e.sess.Belief().Size()
	}
	return info
}

// Get returns a session's state. A parked session is reported from its
// parked metadata without resuming it.
func (m *Manager) Get(ctx context.Context, id string) (Info, error) {
	if err := ctx.Err(); err != nil {
		return Info{}, err
	}
	m.mu.Lock()
	if spec, ok := m.parked[id]; ok {
		m.mu.Unlock()
		return Info{ID: id, Method: spec.Method.Resolve(), K: spec.K, Parked: true}, nil
	}
	m.mu.Unlock()
	e, err := m.acquire(ctx, id)
	if err != nil {
		return Info{}, err
	}
	defer e.mu.Unlock()
	return m.infoOf(e, false), nil
}

// List reports every session, live and parked, ordered by id.
func (m *Manager) List(ctx context.Context) ([]Info, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	out := make([]Info, 0, len(m.live)+len(m.parked))
	for _, e := range m.live {
		// Metadata only — reading counters without the entry lock would
		// race with in-flight rounds.
		out = append(out, Info{ID: e.id, Method: e.spec.Method.Resolve(), K: e.spec.K, Degraded: m.degraded[e.id]})
	}
	for id, spec := range m.parked {
		out = append(out, Info{ID: id, Method: spec.Method.Resolve(), K: spec.K, Parked: true})
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// renderPairs materializes pair views with both tuples, so a client
// needs no separate data fetch to show the annotator the rows.
func renderPairs(rel *dataset.Relation, pairs []dataset.Pair) []PairView {
	out := make([]PairView, len(pairs))
	for i, p := range pairs {
		out[i] = PairView{
			A: p.A, B: p.B,
			ATuple: append([]string(nil), rel.Row(p.A)...),
			BTuple: append([]string(nil), rel.Row(p.B)...),
		}
	}
	return out
}

// Next presents the session's next round of pairs.
func (m *Manager) Next(ctx context.Context, id string) ([]PairView, error) {
	e, err := m.acquire(ctx, id)
	if err != nil {
		return nil, err
	}
	defer e.mu.Unlock()
	pairs, err := e.sess.NextContext(ctx)
	if err != nil {
		return nil, err
	}
	m.notifyStreams(id)
	return renderPairs(e.sess.Relation(), pairs), nil
}

// UncheckedRound disables Submit's round-index idempotency check — the
// pre-v1 contract for callers that track no round counter.
const UncheckedRound = -1

// labelsDigest fingerprints the evidence a set of labelings carries:
// the non-abstained (pair, marked) assertions, order-independent.
// Abstentions are excluded because they carry no evidence — a replayed
// request that spells out its abstentions and one that omits them are
// the same submission. Two slices are accepted so a recorded round's
// labels and revisions digest together without concatenating.
func labelsDigest(a, b []belief.Labeling) uint64 {
	type mark struct {
		a, b   int
		marked uint64
	}
	marks := make([]mark, 0, len(a)+len(b))
	for _, ls := range [2][]belief.Labeling{a, b} {
		for _, l := range ls {
			if l.Abstained {
				continue
			}
			marks = append(marks, mark{l.Pair.A, l.Pair.B, uint64(l.Marked)})
		}
	}
	sort.Slice(marks, func(i, j int) bool {
		if marks[i].a != marks[j].a {
			return marks[i].a < marks[j].a
		}
		if marks[i].b != marks[j].b {
			return marks[i].b < marks[j].b
		}
		return marks[i].marked < marks[j].marked
	})
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(len(marks)))
	for _, mk := range marks {
		mix(uint64(mk.a))
		mix(uint64(mk.b))
		mix(mk.marked)
	}
	return h
}

// Submit consumes the pending round's annotations. round makes the
// call idempotent (pass UncheckedRound to opt out): it must equal the
// session's current round index; a request naming an already-applied
// round succeeds without re-applying when its labels are an identical
// evidence replay of that round, and fails with ErrRoundMismatch
// otherwise — the contract that makes a retrying client safe.
func (m *Manager) Submit(ctx context.Context, id string, round int, labeled []belief.Labeling) (Info, error) {
	e, err := m.acquire(ctx, id)
	if err != nil {
		return Info{}, err
	}
	defer e.mu.Unlock()
	if round != UncheckedRound {
		cur := e.sess.Rounds()
		switch {
		case round > cur:
			return Info{}, fmt.Errorf("%w: round %d is ahead of the current round %d", ErrRoundMismatch, round, cur)
		case round < cur:
			rec := e.sess.Records()[round]
			if labelsDigest(labeled, nil) == labelsDigest(rec.Labeled, rec.Revisions) {
				// Identical replay of an applied round: the first attempt's
				// response was lost; report success again, change nothing.
				return m.infoOf(e, false), nil
			}
			return Info{}, fmt.Errorf("%w: round %d was already applied with different labels (current round %d)", ErrRoundMismatch, round, cur)
		}
	}
	if err := e.sess.SubmitContext(ctx, labeled); err != nil {
		return Info{}, err
	}
	m.notifyStreams(id)
	// A direct submit can fill the gap a parked labelpool drain stalled
	// on; give it another chance.
	if p := m.peekPool(id); p != nil {
		m.kickDrain(p)
	}
	return m.infoOf(e, false), nil
}

// TopBelief returns the learner's k leading hypotheses with 90%
// credible intervals.
func (m *Manager) TopBelief(ctx context.Context, id string, k int) ([]HypothesisView, error) {
	e, err := m.acquire(ctx, id)
	if err != nil {
		return nil, err
	}
	defer e.mu.Unlock()
	if k <= 0 {
		k = 10
	}
	b := e.sess.Belief()
	names := e.sess.Relation().Schema().Names()
	var out []HypothesisView
	for _, i := range b.TopK(k) {
		lo, hi := b.CredibleInterval(i, 0.9)
		out = append(out, HypothesisView{
			FD:         b.Space().FD(i).Render(names),
			Confidence: b.Confidence(i),
			CILow:      lo,
			CIHigh:     hi,
		})
	}
	return out, nil
}

// Repairs derives minority-to-plurality cell repairs from the FDs the
// learner currently believes at confidence at least tau (default 0.5).
func (m *Manager) Repairs(ctx context.Context, id string, tau float64) ([]RepairView, error) {
	e, err := m.acquire(ctx, id)
	if err != nil {
		return nil, err
	}
	defer e.mu.Unlock()
	if tau <= 0 {
		tau = 0.5
	}
	b := e.sess.Belief()
	var believed []repair.BelievedFD
	for _, f := range b.BelievedFDs(tau) {
		i, ok := b.Space().Index(f)
		if !ok {
			continue
		}
		believed = append(believed, repair.BelievedFD{FD: f, Confidence: b.Confidence(i)})
	}
	rel := e.sess.Relation()
	suggestions, err := repair.Suggest(rel, believed, repair.Config{})
	if err != nil {
		return nil, err
	}
	names := rel.Schema().Names()
	out := make([]RepairView, len(suggestions))
	for i, s := range suggestions {
		out[i] = RepairView{
			Row:        s.Row,
			Attr:       names[s.Attr],
			Old:        s.Old,
			New:        s.New,
			Confidence: s.Confidence,
			Source:     s.Source.Render(names),
		}
	}
	return out, nil
}

// Snapshot checkpoints the session into the store under its own id and
// returns that id. The session stays live.
func (m *Manager) Snapshot(ctx context.Context, id string) (string, error) {
	e, err := m.acquire(ctx, id)
	if err != nil {
		return "", err
	}
	defer e.mu.Unlock()
	snap, err := e.sess.Snapshot()
	if err != nil {
		return "", err
	}
	if err := m.storeRetry(ctx, "checkpointing "+e.id, func(ctx context.Context) error {
		return m.store.Put(ctx, e.id, snap)
	}); err != nil {
		m.setDegraded(e.id, true)
		return "", err
	}
	// A successful explicit checkpoint heals a degraded session: its
	// state is durable again.
	m.setDegraded(e.id, false)
	return e.id, nil
}

// Evict checkpoints the session and parks it, freeing its memory. The
// next access transparently resumes it from the store.
func (m *Manager) Evict(ctx context.Context, id string) error {
	e, err := m.acquire(ctx, id)
	if err != nil {
		return err
	}
	return m.evict(ctx, e) // releases the lock
}

// Sweep parks every session idle for at least the manager's IdleTTL.
// It returns the parked session ids. Call it periodically (cmd/etserve
// runs it on a ticker) or directly in tests. A failed eviction leaves
// that session live and degraded but does not stop the sweep — the
// remaining idle sessions still get their chance to park, and a later
// sweep retries the degraded ones (their recovery path once the store
// heals). All failures are joined into the returned error.
func (m *Manager) Sweep(ctx context.Context) ([]string, error) {
	cutoff := m.now().Add(-m.opts.IdleTTL)
	m.mu.Lock()
	var idle []*entry
	for _, e := range m.live {
		if e.lastUsed.Before(cutoff) {
			idle = append(idle, e)
		}
	}
	m.mu.Unlock()
	var swept []string
	var errs []error
	for _, e := range idle {
		if err := ctx.Err(); err != nil {
			errs = append(errs, err)
			break
		}
		if !e.mu.TryLock() {
			continue // mid-request: not idle after all
		}
		if e.gone {
			e.mu.Unlock()
			continue
		}
		m.mu.Lock()
		still := m.live[e.id] == e && !e.lastUsed.After(cutoff)
		m.mu.Unlock()
		if !still {
			e.mu.Unlock()
			continue
		}
		if err := m.evict(ctx, e); err != nil {
			errs = append(errs, err)
			continue
		}
		swept = append(swept, e.id)
	}
	sort.Strings(swept)
	return swept, errors.Join(errs...)
}

// Counts reports how many sessions are live and parked.
func (m *Manager) Counts() (live, parked int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.live), len(m.parked)
}

// Health is the manager's operator-facing health summary — what
// GET /v1/healthz reports and what a load balancer should act on.
type Health struct {
	// OK is false while the manager is draining, any session is
	// degraded, or the last store operation failed — conditions under
	// which an operator should drain traffic toward a healthier replica.
	OK bool `json:"ok"`
	// Live, Parked and Degraded count sessions (degraded ⊆ live).
	Live     int `json:"live"`
	Parked   int `json:"parked"`
	Degraded int `json:"degraded"`
	// Draining reports Shutdown in progress.
	Draining bool `json:"draining"`
	// StoreFailures counts store operations that exhausted the retry
	// policy since startup; StoreError is the most recent one, empty
	// once an operation succeeds again.
	StoreFailures uint64 `json:"store_failures"`
	StoreError    string `json:"store_error,omitempty"`
}

// Health reports the manager's current health.
func (m *Manager) Health() Health {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := Health{
		Live:          len(m.live),
		Parked:        len(m.parked),
		Degraded:      len(m.degraded),
		Draining:      m.draining,
		StoreFailures: m.storeFails,
	}
	if m.storeErr != nil {
		h.StoreError = m.storeErr.Error()
	}
	h.OK = !h.Draining && h.Degraded == 0 && m.storeErr == nil
	return h
}

// Shutdown drains the manager: new requests fail with ErrShuttingDown,
// every labelpool is flushed (queued submissions that earned a ticket
// are applied, not dropped), and every live session is checkpointed
// into the store. It blocks on in-flight per-session work (each entry
// lock is acquired), so once it returns no submitted round is lost.
// One session's checkpoint failure does not abandon the rest — every
// session gets its full retry budget and all failures are joined into
// the returned error; sessions whose checkpoint failed stay resident
// and degraded, so a caller can fix the store and call Shutdown again.
// Safe to call more than once.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	first := !m.draining
	m.draining = true
	m.mu.Unlock()
	if first {
		close(m.drainSignal) // wake attached streams so they close promptly
	}
	// Flush the labelpools before checkpointing: drains run under
	// acquireOpt(evenWhileDraining), so every queued round lands in its
	// session before that session's snapshot is taken.
	m.flushPools()
	m.drainWG.Wait()

	m.mu.Lock()
	entries := make([]*entry, 0, len(m.live))
	for _, e := range m.live {
		entries = append(entries, e)
	}
	m.mu.Unlock()

	var errs []error
	for _, e := range entries {
		e.mu.Lock()
		if e.gone {
			e.mu.Unlock()
			continue
		}
		if err := m.evict(ctx, e); err != nil { // releases the lock
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
