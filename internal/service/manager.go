package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"exptrain/internal/belief"
	"exptrain/internal/datagen"
	"exptrain/internal/dataset"
	"exptrain/internal/errgen"
	"exptrain/internal/fd"
	"exptrain/internal/game"
	"exptrain/internal/persist"
	"exptrain/internal/sampling"
	"exptrain/internal/stats"
)

// Source says where a session's relation comes from. Exactly one of
// CSV or Dataset must be set. The source is kept for the session's
// whole life: an evicted session's relation is rebuilt from it when the
// session is resumed (snapshots deliberately do not embed relations).
type Source struct {
	// Dataset is a synthetic paper dataset name ("OMDB", "AIRPORT",
	// "Hospital", "Tax"); Rows and Seed make the build deterministic.
	Dataset string
	Rows    int
	Seed    uint64
	// CSV is an uploaded relation (header row + records).
	CSV []byte
}

// build materializes the relation.
func (s Source) build() (*dataset.Relation, error) {
	rel, _, err := s.materialize()
	return rel, err
}

// materialize builds the relation and, for synthetic sources, also
// returns the generated dataset (its exact FDs are the evaluator's
// injection targets). ds is nil for CSV sources.
func (s Source) materialize() (rel *dataset.Relation, ds *datagen.Dataset, err error) {
	switch {
	case len(s.CSV) > 0 && s.Dataset != "":
		return nil, nil, fmt.Errorf("service: source has both CSV and dataset %q", s.Dataset)
	case len(s.CSV) > 0:
		rel, err = dataset.ReadCSV(bytes.NewReader(s.CSV))
		return rel, nil, err
	case s.Dataset != "":
		gen, err := datagen.ByName(s.Dataset)
		if err != nil {
			return nil, nil, err
		}
		rows := s.Rows
		if rows <= 0 {
			rows = 240
		}
		d := gen(rows, s.Seed)
		return d.Rel, d, nil
	default:
		return nil, nil, fmt.Errorf("service: source needs a dataset name or CSV data")
	}
}

// Spec configures one hosted session.
type Spec struct {
	Source Source
	// Method is the learner's response strategy (MethodDefault →
	// StochasticUS).
	Method sampling.Method
	// Gamma is the stochastic temperature (DefaultGamma when zero).
	Gamma float64
	// K is pairs per round (game.Session default when zero).
	K int
	// MaxLHS bounds the enumerated hypothesis space (default 2).
	MaxLHS int
	// MaxFDs truncates the space (0 = no cap).
	MaxFDs int
	// Seed drives pool construction and stochastic selection.
	Seed uint64
	// Eval turns on per-round held-out detection scoring (§C.1's F1
	// series): errors are injected into the generated relation at the
	// given Degree against the dataset's exact FDs, 30% of the rows are
	// held out, and every submitted round scores the learner's believed
	// model on that split. Requires a synthetic Dataset source — a CSV
	// upload has no ground-truth FDs to injure or score against.
	Eval bool
	// Degree is the injected violation degree in (0, 1) when Eval is
	// set (default 0.1).
	Degree float64
}

// Info is a session's externally visible state.
type Info struct {
	ID        string          `json:"id"`
	Method    sampling.Method `json:"method"`
	K         int             `json:"k"`
	Rounds    int             `json:"rounds"`
	Pending   int             `json:"pending"`
	Remaining int             `json:"remaining"`
	Parked    bool            `json:"parked"`
	// Degraded marks a live session whose last checkpoint exhausted the
	// store retry policy: its state exists only in memory until a later
	// checkpoint succeeds. Degraded sessions keep serving rounds and are
	// skipped by eviction while any healthy victim exists.
	Degraded bool `json:"degraded,omitempty"`
	Rows     int  `json:"rows"`
	Space    int  `json:"space"`
}

// PairView is one presented pair with its rendered tuples, so a client
// needs no separate data fetch to show the annotator the rows.
type PairView struct {
	A      int      `json:"a"`
	B      int      `json:"b"`
	ATuple []string `json:"a_tuple"`
	BTuple []string `json:"b_tuple"`
}

// HypothesisView is one FD of the learner's belief, rendered.
type HypothesisView struct {
	FD         string  `json:"fd"`
	Confidence float64 `json:"confidence"`
	CILow      float64 `json:"ci_low"`
	CIHigh     float64 `json:"ci_high"`
}

// RepairView is one suggested cell repair, rendered.
type RepairView struct {
	Row        int     `json:"row"`
	Attr       string  `json:"attr"`
	Old        string  `json:"old"`
	New        string  `json:"new"`
	Confidence float64 `json:"confidence"`
	Source     string  `json:"source"`
}

// Options tunes the manager.
type Options struct {
	// Shards is the number of serving shards sessions are partitioned
	// across by rendezvous hash on their id (default 1). Each shard has
	// its own lock domain — live map, parking, labelpools, drains,
	// stream wakeups — so shards never contend with each other; routing
	// is deterministic in the id, so a fixed shard count is required
	// across restarts of a store-backed deployment (parked sessions are
	// found on the shard their id hashes to).
	Shards int
	// MaxSessions bounds resident sessions across all shards (default
	// 128); each shard enforces ceil(MaxSessions/Shards). At the bound,
	// creating or unparking first tries to evict the least-recently-used
	// idle session on the session's shard; if none is evictable the
	// request fails with ErrTooManySessions.
	MaxSessions int
	// IdleTTL parks sessions idle at least this long on each Sweep
	// (default 15 minutes).
	IdleTTL time.Duration
	// Store receives eviction and shutdown checkpoints (default: a
	// fresh in-memory store). Shards share it — wrap it in a
	// persist.MultiStore to replicate checkpoints across backing
	// stores.
	Store persist.Store
	// Retry bounds retries of store operations (zero value → defaults:
	// 4 attempts, 5ms base backoff, 250ms cap).
	Retry RetryPolicy
	// RetrySeed seeds the backoff jitter streams (default 1). Each
	// shard derives its own stream from (RetrySeed, shard id), so
	// schedules are reproducible in fault-injection tests yet never
	// aligned across shards after a store outage.
	RetrySeed uint64
	// MaxQueuedSubmissions bounds each session's labelpool queue
	// (default 64). Enqueueing beyond it fails with
	// ErrSubmissionBacklog (HTTP 429 + Retry-After).
	MaxQueuedSubmissions int
	// DrainBatch caps how many queued rounds one drain applies under a
	// single entry-lock acquisition (default 16) — large enough to
	// amortize locking and checkpoint scheduling, small enough that
	// interactive requests interleave with a deep backlog.
	DrainBatch int
	// CheckpointEvery, when positive, has the labelpool drain
	// checkpoint a session after that many applied rounds, amortizing
	// durability across the batch instead of paying a snapshot per
	// round (0 = checkpoint only on park/shutdown/explicit snapshot).
	CheckpointEvery int
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.MaxSessions <= 0 {
		o.MaxSessions = 128
	}
	if o.IdleTTL <= 0 {
		o.IdleTTL = 15 * time.Minute
	}
	if o.Store == nil {
		o.Store = persist.NewMemStore()
	}
	o.Retry = o.Retry.withDefaults()
	if o.RetrySeed == 0 {
		o.RetrySeed = 1
	}
	if o.MaxQueuedSubmissions <= 0 {
		o.MaxQueuedSubmissions = 64
	}
	if o.DrainBatch <= 0 {
		o.DrainBatch = 16
	}
	return o
}

// Manager is the front tier of the session service: it mints session
// ids, routes every request to the session's home shard by rendezvous
// hash (see route.go), and fans shard-wide operations (List, Sweep,
// Health, Shutdown) out across the shard set. All methods are safe for
// concurrent use. All per-session state and locking lives in the
// shards — the only mutable state here is the id sequence and the
// draining flag.
type Manager struct {
	opts   Options
	store  persist.Store
	shards []*shard

	mu sync.Mutex
	// seq numbers sessions; guarded by mu. Ids are minted globally so
	// they stay dense and unique; the hash of the id then decides the
	// home shard.
	seq uint64
	// draining rejects new sessions during Shutdown; guarded by mu.
	// Each shard additionally carries its own flag for its request
	// paths.
	draining bool

	// drainSignal is closed when Shutdown begins, so streams close
	// promptly instead of waiting out a heartbeat.
	drainSignal chan struct{}
}

// NewManager builds a manager with opts.Shards serving shards.
func NewManager(opts Options) *Manager {
	opts = opts.withDefaults()
	perShard := (opts.MaxSessions + opts.Shards - 1) / opts.Shards
	m := &Manager{
		opts:        opts,
		store:       opts.Store,
		shards:      make([]*shard, opts.Shards),
		drainSignal: make(chan struct{}),
	}
	for i := range m.shards {
		m.shards[i] = newShard(i, opts, perShard)
	}
	return m
}

// Store returns the checkpoint store.
func (m *Manager) Store() persist.Store { return m.store }

// Shards returns the serving shards in index order.
func (m *Manager) Shards() []Shard {
	out := make([]Shard, len(m.shards))
	for i, sh := range m.shards {
		out[i] = sh
	}
	return out
}

// setNow installs a clock on every shard — a test hook.
func (m *Manager) setNow(now func() time.Time) {
	for _, sh := range m.shards {
		sh.mu.Lock()
		sh.now = now
		sh.mu.Unlock()
	}
}

// buildSession constructs the game.Session for a spec, optionally
// resuming from a snapshot, along with its stats-collecting observer.
// When wrec is non-nil it is installed alongside the stats observer so
// every scored round also yields a WAL delta. Everything is
// deterministic in the spec (injection, split and pool all derive from
// spec.Seed), so an evicted session unparks onto an identical world —
// and a sharded deployment replays identically to a single-shard one.
func buildSession(spec Spec, snap *persist.Snapshot, wrec *walRecorder) (*game.Session, *roundStats, error) {
	rel, ds, err := spec.Source.materialize()
	if err != nil {
		return nil, nil, err
	}
	sampler, err := sampling.New(spec.Method, spec.Gamma)
	if err != nil {
		return nil, nil, err
	}
	rs := &roundStats{eval: spec.Eval}
	cfg := game.SessionConfig{
		Relation: rel,
		Sampler:  sampler,
		K:        spec.K,
		Seed:     spec.Seed,
		Observer: rs,
	}
	if wrec != nil {
		wrec.eval = spec.Eval
		cfg.Observer = game.MultiObserver(rs, wrec)
	}
	if spec.Eval {
		if ds == nil {
			return nil, nil, fmt.Errorf("service: eval needs a synthetic dataset source (no ground-truth FDs for CSV data)")
		}
		degree := spec.Degree
		if degree == 0 {
			degree = 0.1
		}
		injected, err := errgen.InjectDegree(rel, errgen.DegreeConfig{
			FDs:        ds.ExactFDs,
			Degree:     degree,
			MaxChanges: rel.NumRows() / 3,
			Seed:       spec.Seed ^ 0xE44,
		})
		if err != nil {
			return nil, nil, err
		}
		rel = injected.Rel
		cfg.Relation = rel
		// 30% held-out test split, as in the paper's evaluation.
		rng := stats.NewRNG(spec.Seed ^ 0x9A3E)
		_, testRows := rel.Split(rng.Split(), 0.7)
		dirty := make(map[int]struct{})
		for newIdx, orig := range testRows {
			if _, bad := injected.DirtyRows[orig]; bad {
				dirty[newIdx] = struct{}{}
			}
		}
		cfg.Eval = &game.Evaluator{TestRel: rel.Subset(testRows), DirtyRows: dirty}
	}
	if snap != nil {
		sess, err := game.ResumeSession(snap, cfg)
		if err != nil {
			return nil, nil, err
		}
		// Restored rounds replay without observer events; backfill them.
		rs.prime(sess.Records())
		if wrec != nil {
			wrec.bind(sess)
		}
		return sess, rs, nil
	}
	maxLHS := spec.MaxLHS
	if maxLHS <= 0 {
		maxLHS = 2
	}
	fds, err := fd.Enumerate(fd.SpaceConfig{
		Arity:  rel.Schema().Arity(),
		MaxLHS: maxLHS,
		MaxFDs: spec.MaxFDs,
	})
	if err != nil {
		return nil, nil, err
	}
	space, err := fd.NewSpace(fds)
	if err != nil {
		return nil, nil, err
	}
	cfg.Space = space
	sess, err := game.NewSession(cfg)
	if err != nil {
		return nil, nil, err
	}
	if wrec != nil {
		wrec.bind(sess)
	}
	return sess, rs, nil
}

// mintID draws the next session id, or ErrShuttingDown while draining.
func (m *Manager) mintID() (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return "", ErrShuttingDown
	}
	m.seq++
	return fmt.Sprintf("sess-%d", m.seq), nil
}

// Create builds and registers a new session on its home shard,
// evicting an idle session there if the shard is full. The returned
// Info carries the new id.
func (m *Manager) Create(ctx context.Context, spec Spec) (Info, error) {
	if err := ctx.Err(); err != nil {
		return Info{}, err
	}
	var wrec *walRecorder
	if persist.AppenderOf(m.store) != nil {
		wrec = &walRecorder{}
	}
	sess, rs, err := buildSession(spec, nil, wrec)
	if err != nil {
		return Info{}, err
	}
	id, err := m.mintID()
	if err != nil {
		return Info{}, err
	}
	if wrec != nil {
		wrec.id = id // before any round flows; deltas are immutable after recording
	}
	sh := m.shardFor(id)
	e := &entry{id: id, spec: spec, sess: sess, stats: rs, wal: wrec}
	if err := sh.install(ctx, e); err != nil {
		return Info{}, err
	}
	// WAL-backed sessions checkpoint a genesis snapshot immediately, so
	// every later round needs only an O(space) append, never a snapshot.
	sh.genesis(ctx, e)
	return sh.infoOf(e, false), nil
}

// Resume registers a new session restored from a snapshot previously
// saved in the store (for example by a prior process before shutdown).
// The snapshot's history is replayed against a relation rebuilt from
// spec.Source, which must describe the same data. The new session gets
// a new id, so it may land on a different shard than the snapshot's
// original session — shard homes follow ids, not snapshots.
func (m *Manager) Resume(ctx context.Context, snapshotID string, spec Spec) (Info, error) {
	if err := ctx.Err(); err != nil {
		return Info{}, err
	}
	// The snapshot load retries on the shard that owns the SNAPSHOT id,
	// so its failure accounting lands where the id routes.
	loader := m.shardFor(snapshotID)
	var snap *persist.Snapshot
	err := loader.storeRetry(ctx, "loading snapshot "+snapshotID, func(ctx context.Context) error {
		var gerr error
		snap, gerr = m.store.Get(ctx, snapshotID)
		return gerr
	})
	if err != nil {
		return Info{}, err
	}
	var wrec *walRecorder
	if persist.AppenderOf(m.store) != nil {
		wrec = &walRecorder{}
	}
	sess, rs, err := buildSession(spec, snap, wrec)
	if err != nil {
		return Info{}, err
	}
	id, err := m.mintID()
	if err != nil {
		return Info{}, err
	}
	if wrec != nil {
		wrec.id = id // before any round flows; deltas are immutable after recording
	}
	sh := m.shardFor(id)
	e := &entry{id: id, spec: spec, sess: sess, stats: rs, wal: wrec}
	if err := sh.install(ctx, e); err != nil {
		return Info{}, err
	}
	// The loaded snapshot lives under snapshotID, not the new id: the
	// resumed session still needs its own base snapshot for appends to
	// replay onto.
	sh.genesis(ctx, e)
	return sh.infoOf(e, false), nil
}

// Get returns a session's state. A parked session is reported from its
// parked metadata without resuming it.
func (m *Manager) Get(ctx context.Context, id string) (Info, error) {
	return m.shardFor(id).Get(ctx, id)
}

// List reports every session across all shards, live and parked,
// ordered by id.
func (m *Manager) List(ctx context.Context) ([]Info, error) {
	var out []Info
	for _, sh := range m.shards {
		infos, err := sh.List(ctx)
		if err != nil {
			return nil, err
		}
		out = append(out, infos...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// renderPairs materializes pair views with both tuples, so a client
// needs no separate data fetch to show the annotator the rows.
func renderPairs(rel *dataset.Relation, pairs []dataset.Pair) []PairView {
	out := make([]PairView, len(pairs))
	for i, p := range pairs {
		out[i] = PairView{
			A: p.A, B: p.B,
			ATuple: append([]string(nil), rel.Row(p.A)...),
			BTuple: append([]string(nil), rel.Row(p.B)...),
		}
	}
	return out
}

// Next presents the session's next round of pairs.
func (m *Manager) Next(ctx context.Context, id string) ([]PairView, error) {
	return m.shardFor(id).Next(ctx, id)
}

// UncheckedRound disables Submit's round-index idempotency check — the
// pre-v1 contract for callers that track no round counter.
const UncheckedRound = -1

// labelsDigest fingerprints the evidence a set of labelings carries:
// the non-abstained (pair, marked) assertions, order-independent.
// Abstentions are excluded because they carry no evidence — a replayed
// request that spells out its abstentions and one that omits them are
// the same submission. Two slices are accepted so a recorded round's
// labels and revisions digest together without concatenating.
func labelsDigest(a, b []belief.Labeling) uint64 {
	type mark struct {
		a, b   int
		marked uint64
	}
	marks := make([]mark, 0, len(a)+len(b))
	for _, ls := range [2][]belief.Labeling{a, b} {
		for _, l := range ls {
			if l.Abstained {
				continue
			}
			marks = append(marks, mark{l.Pair.A, l.Pair.B, uint64(l.Marked)})
		}
	}
	sort.Slice(marks, func(i, j int) bool {
		if marks[i].a != marks[j].a {
			return marks[i].a < marks[j].a
		}
		if marks[i].b != marks[j].b {
			return marks[i].b < marks[j].b
		}
		return marks[i].marked < marks[j].marked
	})
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(len(marks)))
	for _, mk := range marks {
		mix(uint64(mk.a))
		mix(uint64(mk.b))
		mix(mk.marked)
	}
	return h
}

// Submit consumes the pending round's annotations. round makes the
// call idempotent (pass UncheckedRound to opt out): it must equal the
// session's current round index; a request naming an already-applied
// round succeeds without re-applying when its labels are an identical
// evidence replay of that round, and fails with ErrRoundMismatch
// otherwise — the contract that makes a retrying client safe.
func (m *Manager) Submit(ctx context.Context, id string, round int, labeled []belief.Labeling) (Info, error) {
	return m.shardFor(id).Submit(ctx, id, round, labeled)
}

// TopBelief returns the learner's k leading hypotheses with 90%
// credible intervals.
func (m *Manager) TopBelief(ctx context.Context, id string, k int) ([]HypothesisView, error) {
	return m.shardFor(id).TopBelief(ctx, id, k)
}

// Repairs derives minority-to-plurality cell repairs from the FDs the
// learner currently believes at confidence at least tau (default 0.5).
func (m *Manager) Repairs(ctx context.Context, id string, tau float64) ([]RepairView, error) {
	return m.shardFor(id).Repairs(ctx, id, tau)
}

// Snapshot checkpoints the session into the store under its own id and
// returns that id. The session stays live.
func (m *Manager) Snapshot(ctx context.Context, id string) (string, error) {
	return m.shardFor(id).Snapshot(ctx, id)
}

// Evict checkpoints the session and parks it, freeing its memory. The
// next access transparently resumes it from the store.
func (m *Manager) Evict(ctx context.Context, id string) error {
	return m.shardFor(id).Evict(ctx, id)
}

// Rounds returns the session's per-round measurement series, one entry
// per submitted round in order. Sessions created with eval include the
// held-out detection score per round.
func (m *Manager) Rounds(ctx context.Context, id string) ([]RoundView, error) {
	return m.shardFor(id).Rounds(ctx, id)
}

// Sweep parks every session idle for at least the manager's IdleTTL,
// fanning one sweeper per shard so shards park through the store
// concurrently — store latency overlaps instead of serializing, which
// is where sharded sweep throughput comes from. It returns the parked
// session ids across all shards, sorted. Call it periodically
// (cmd/etserve runs it on a ticker) or directly in tests. A failed
// eviction leaves that session live and degraded but does not stop its
// shard's sweep; all failures are joined into the returned error.
func (m *Manager) Sweep(ctx context.Context) ([]string, error) {
	type result struct {
		swept []string
		err   error
	}
	results := make([]result, len(m.shards))
	var wg sync.WaitGroup
	for i, sh := range m.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			swept, err := sh.Sweep(ctx)
			results[i] = result{swept, err}
		}(i, sh)
	}
	wg.Wait()
	var swept []string
	var errs []error
	for _, r := range results {
		swept = append(swept, r.swept...)
		if r.err != nil {
			errs = append(errs, r.err)
		}
	}
	sort.Strings(swept)
	return swept, errors.Join(errs...)
}

// Counts reports how many sessions are live and parked across all
// shards.
func (m *Manager) Counts() (live, parked int) {
	for _, sh := range m.shards {
		l, p := sh.Counts()
		live += l
		parked += p
	}
	return live, parked
}

// Shutdown drains the manager: new requests fail with ErrShuttingDown,
// every labelpool is flushed (queued submissions that earned a ticket
// are applied, not dropped), and every live session is checkpointed
// into the store. Shards drain concurrently, each blocking on its own
// in-flight per-session work, so once Shutdown returns no submitted
// round is lost. One session's checkpoint failure does not abandon the
// rest — every session gets its full retry budget and all failures are
// joined into the returned error; sessions whose checkpoint failed
// stay resident and degraded, so a caller can fix the store and call
// Shutdown again. Safe to call more than once.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	first := !m.draining
	m.draining = true
	m.mu.Unlock()
	// Every shard must observe its draining flag before its pools flush
	// (the enqueue path re-checks the flag under the pool lock), so flip
	// all flags before any shard starts draining.
	for _, sh := range m.shards {
		sh.setDraining()
	}
	if first {
		close(m.drainSignal) // wake attached streams so they close promptly
	}
	errs := make([]error, len(m.shards))
	var wg sync.WaitGroup
	for i, sh := range m.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			errs[i] = sh.shutdown(ctx)
		}(i, sh)
	}
	wg.Wait()
	return errors.Join(errs...)
}
