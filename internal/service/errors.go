// Package service hosts many live exploratory-training sessions behind
// a concurrency-safe manager and an HTTP/JSON API — the long-lived,
// multi-annotator host the step-wise game.Session protocol was built
// for. Each session is an independent game.Session guarded by its own
// lock; the manager adds idle eviction (sessions are checkpointed to a
// persist.Store and transparently resumed on next access), max-session
// backpressure, and graceful shutdown that checkpoints every live
// session.
package service

import "errors"

// Sentinel errors of the service surface; test with errors.Is. The
// HTTP layer maps them onto status codes (see Server).
var (
	// ErrSessionNotFound: the id names neither a live nor a parked
	// session.
	ErrSessionNotFound = errors.New("service: session not found")
	// ErrTooManySessions: the manager is at MaxSessions and no idle
	// session could be evicted to make room (HTTP 429).
	ErrTooManySessions = errors.New("service: too many live sessions")
	// ErrShuttingDown: the manager is draining; no new work is accepted
	// (HTTP 503 with kind "shutting_down" — distinct from the capacity
	// 429 so clients know to fail over rather than shed load).
	ErrShuttingDown = errors.New("service: shutting down")
	// ErrStoreUnavailable: a checkpoint-store operation kept failing
	// after the manager's full retry policy. The underlying cause is
	// wrapped alongside it (HTTP 503 + Retry-After). The session the
	// operation was for is not lost — a failed checkpoint leaves it live
	// and degraded (see Info.Degraded).
	ErrStoreUnavailable = errors.New("service: checkpoint store unavailable")
)
