// Package service hosts many live exploratory-training sessions behind
// a concurrency-safe manager and an HTTP/JSON API — the long-lived,
// multi-annotator host the step-wise game.Session protocol was built
// for. Each session is an independent game.Session guarded by its own
// lock; the manager adds idle eviction (sessions are checkpointed to a
// persist.Store and transparently resumed on next access), max-session
// backpressure, a batched submission labelpool with streamed round
// delivery, and graceful shutdown that checkpoints every live session.
package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"exptrain/internal/game"
	"exptrain/internal/persist"
	"exptrain/internal/sampling"
)

// Sentinel errors of the service surface; test with errors.Is. The
// HTTP layer maps them onto status codes and machine-readable kinds
// (see APIError and Kinds).
var (
	// ErrSessionNotFound: the id names neither a live nor a parked
	// session.
	ErrSessionNotFound = errors.New("service: session not found")
	// ErrTooManySessions: the manager is at MaxSessions and no idle
	// session could be evicted to make room (HTTP 429).
	ErrTooManySessions = errors.New("service: too many live sessions")
	// ErrShuttingDown: the manager is draining; no new work is accepted
	// (HTTP 503 with kind "shutting_down" — distinct from the capacity
	// 429 so clients know to fail over rather than shed load).
	ErrShuttingDown = errors.New("service: shutting down")
	// ErrStoreUnavailable: a checkpoint-store operation kept failing
	// after the manager's full retry policy. The underlying cause is
	// wrapped alongside it (HTTP 503 + Retry-After). The session the
	// operation was for is not lost — a failed checkpoint leaves it live
	// and degraded (see Info.Degraded).
	ErrStoreUnavailable = errors.New("service: checkpoint store unavailable")
	// ErrBadRequest: the request body or parameters failed validation
	// before reaching a session (HTTP 400).
	ErrBadRequest = errors.New("service: bad request")
	// ErrRoundMismatch: an idempotent submission named a round index
	// that is not the session's current round and is not an identical
	// replay of an already-applied round (HTTP 409). Retrying the same
	// request will not succeed; the client must resynchronize on
	// GET /v1/sessions/{id}.
	ErrRoundMismatch = errors.New("service: submission round does not match the session")
	// ErrDuplicateRound: the labelpool already holds a queued submission
	// for that round (HTTP 409). The queued ticket stands; enqueue a
	// replacement only after it fails.
	ErrDuplicateRound = errors.New("service: a submission for that round is already queued")
	// ErrSubmissionBacklog: the session's labelpool queue is at capacity
	// (HTTP 429 + Retry-After). The drain is behind; wait for queued
	// rounds to apply.
	ErrSubmissionBacklog = errors.New("service: submission queue is full")
	// ErrTicketNotFound: the submission ticket id is unknown — never
	// issued, or aged out of the per-session ticket history (HTTP 404).
	ErrTicketNotFound = errors.New("service: submission ticket not found")
)

// Machine-readable error kinds of the v1 API. Every error response is
// one APIError envelope whose Kind is drawn from this registry; clients
// switch on Kind (or errors.Is against the client package's sentinels)
// instead of parsing messages. Kinds are append-only: a released kind
// never changes meaning or status code.
const (
	KindBadRequest        = "bad_request"
	KindNotFound          = "not_found"
	KindTooManySessions   = "too_many_sessions"
	KindShuttingDown      = "shutting_down"
	KindStoreUnavailable  = "store_unavailable"
	KindCorruptSnapshot   = "corrupt_snapshot"
	KindRoundPending      = "round_pending"
	KindNoRoundPending    = "no_round_pending"
	KindPoolExhausted     = "pool_exhausted"
	KindRoundMismatch     = "round_mismatch"
	KindDuplicateRound    = "duplicate_round"
	KindSubmissionBacklog = "submission_backlog"
	KindTimeout           = "timeout"
	KindCanceled          = "canceled"
	KindInternal          = "internal"
)

// APIError is the one JSON error envelope every v1 route writes, and
// the registry's rendering of a service error: a stable machine-
// readable Kind, a human-readable Message, and — for backpressure
// kinds — the number of seconds after which a retry is worthwhile
// (also sent as the Retry-After header).
type APIError struct {
	Kind       string `json:"kind"`
	Message    string `json:"message"`
	RetryAfter int    `json:"retry_after,omitempty"`
}

// Error implements error, so an APIError decoded by a client can be
// returned and matched as-is.
func (e *APIError) Error() string { return e.Kind + ": " + e.Message }

// KindInfo documents one registered error kind.
type KindInfo struct {
	Kind   string
	Status int
	Doc    string
}

// kindRegistry is the stable kind table: every kind the API can emit,
// its HTTP status, and what a client should do about it. apiError
// consults it for the status; API.md documents it verbatim.
var kindRegistry = []KindInfo{
	{KindBadRequest, http.StatusBadRequest, "the request body or parameters failed validation; do not retry unchanged"},
	{KindNotFound, http.StatusNotFound, "no such session, snapshot or ticket"},
	{KindTooManySessions, http.StatusTooManyRequests, "the manager is at capacity and nothing idle could be evicted; retry after Retry-After"},
	{KindShuttingDown, http.StatusServiceUnavailable, "the replica is draining; fail over"},
	{KindStoreUnavailable, http.StatusServiceUnavailable, "the checkpoint store kept failing after retries; retry after Retry-After"},
	{KindCorruptSnapshot, http.StatusInternalServerError, "a stored snapshot failed its integrity check; operator attention needed"},
	{KindRoundPending, http.StatusConflict, "a presented round is awaiting submission; submit it before calling next"},
	{KindNoRoundPending, http.StatusConflict, "nothing is pending; call next before submit"},
	{KindPoolExhausted, http.StatusGone, "the session has presented every candidate pair; the session is complete"},
	{KindRoundMismatch, http.StatusConflict, "the submission's round index is neither the current round nor an identical replay; resynchronize"},
	{KindDuplicateRound, http.StatusConflict, "a submission for that round is already queued; await its ticket"},
	{KindSubmissionBacklog, http.StatusTooManyRequests, "the session's submission queue is full; retry after Retry-After"},
	{KindTimeout, http.StatusGatewayTimeout, "the request exceeded the server's per-request timeout"},
	{KindCanceled, 499, "the client closed the connection before the response"},
	{KindInternal, http.StatusInternalServerError, "unclassified server-side failure"},
}

// Kinds returns the registered error kinds in emission-stable order.
func Kinds() []KindInfo { return append([]KindInfo(nil), kindRegistry...) }

// kindStatus resolves a kind's registered HTTP status (500 for an
// unregistered kind, which would be a bug).
func kindStatus(kind string) int {
	for _, k := range kindRegistry {
		if k.Kind == kind {
			return k.Status
		}
	}
	return http.StatusInternalServerError
}

// errorKind classifies any error crossing the HTTP boundary into a
// registry kind — the errors.Is-able sentinel surface is what makes
// this a switch instead of string matching.
func errorKind(err error) string {
	switch {
	case errors.Is(err, ErrSessionNotFound), errors.Is(err, persist.ErrNotFound), errors.Is(err, ErrTicketNotFound):
		return KindNotFound
	case errors.Is(err, ErrTooManySessions):
		return KindTooManySessions
	case errors.Is(err, ErrSubmissionBacklog):
		return KindSubmissionBacklog
	case errors.Is(err, ErrShuttingDown):
		return KindShuttingDown
	case errors.Is(err, ErrStoreUnavailable):
		// Checked before the context sentinels: an exhausted retry loop
		// may wrap an ambiguous cancellation, and the actionable fact for
		// the client is "the store is sick, retry later".
		return KindStoreUnavailable
	case errors.Is(err, persist.ErrCorrupt):
		return KindCorruptSnapshot
	case errors.Is(err, ErrRoundMismatch):
		return KindRoundMismatch
	case errors.Is(err, ErrDuplicateRound):
		return KindDuplicateRound
	case errors.Is(err, game.ErrRoundPending):
		return KindRoundPending
	case errors.Is(err, game.ErrNoRoundPending):
		return KindNoRoundPending
	case errors.Is(err, game.ErrPoolExhausted):
		return KindPoolExhausted
	case errors.Is(err, ErrBadRequest), errors.Is(err, sampling.ErrUnknownMethod), errors.Is(err, persist.ErrBadID):
		return KindBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return KindTimeout
	case errors.Is(err, context.Canceled):
		return KindCanceled
	default:
		return KindInternal
	}
}

// retryAfterSeconds advises clients when to come back: quickly for a
// draining or store-sick replica (a load balancer will have failed over
// by then), with more patience for capacity pressure (a session must go
// idle, or the drain must catch up, before room appears).
func retryAfterSeconds(status int) int {
	switch status {
	case http.StatusTooManyRequests:
		return 10
	case http.StatusServiceUnavailable:
		return 2
	default:
		return 0
	}
}

// apiError renders any service error into the envelope: kind from the
// sentinel classification, status from the registry, Retry-After for
// the backpressure kinds.
func apiError(err error) (int, *APIError) {
	kind := errorKind(err)
	status := kindStatus(kind)
	return status, &APIError{
		Kind:       kind,
		Message:    err.Error(),
		RetryAfter: retryAfterSeconds(status),
	}
}

// badRequest wraps a validation failure so it classifies as
// KindBadRequest while keeping the cause readable.
func badRequest(err error) error {
	return fmt.Errorf("%w: %s", ErrBadRequest, err)
}
