package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"exptrain/internal/belief"
	"exptrain/internal/game"
)

// The labelpool is the batched admission path of the v1 API: clients
// POST whole windows of round submissions, each keyed by its round
// index (the session's nonce), get tickets back immediately, and a
// per-session drain applies queued rounds into the engine in batches
// under one entry-lock acquisition — observer events, belief updates
// and checkpoint scheduling amortize across the batch instead of
// costing one lock round-trip per round.
//
// The shape is a transaction pool keyed by nonce: the queue is kept
// sorted by round, the drain only applies the consecutive run starting
// at the session's current round, and a gap parks the queue until the
// missing round arrives (via another enqueue or a direct submit, which
// kicks the drain). Enqueue validation is all-or-nothing and cheap —
// pair membership against the relation, label domain against the
// schema, duplicate-round against the queue — so a rejected batch
// leaves no partial state.

// Submission is one queued round: the labels to apply when the session
// reaches Round.
type Submission struct {
	Round  int
	Labels []belief.Labeling
}

// TicketState is a submission ticket's lifecycle state.
type TicketState string

const (
	// TicketQueued: accepted, waiting for the drain.
	TicketQueued TicketState = "queued"
	// TicketApplied: the round was applied to the session (or was an
	// identical replay of an already-applied round).
	TicketApplied TicketState = "applied"
	// TicketFailed: the round could not be applied; Error says why. The
	// round slot is free again — enqueue a corrected submission.
	TicketFailed TicketState = "failed"
)

// Ticket is the receipt for one queued submission, polled on
// GET /v1/sessions/{id}/submissions/{ticket}.
type Ticket struct {
	ID    string      `json:"id"`
	Round int         `json:"round"`
	State TicketState `json:"state"`
	Error string      `json:"error,omitempty"`
}

// ticketHistory bounds how many terminal tickets a pool remembers;
// older ones age out FIFO and then poll as ErrTicketNotFound.
const ticketHistory = 256

// poolItem is one queued submission with its ticket.
type poolItem struct {
	round    int
	labeled  []belief.Labeling
	ticketID string
}

// labelPool is one session's admission queue. Lock order: an entry
// lock may be taken before pool.mu (the drain resynchronizes under
// both), and the shard mutex may be taken under pool.mu (short
// metadata reads);
// pool.mu is never held while taking an entry lock, and nothing takes
// pool.mu while holding sh.mu.
type labelPool struct {
	id string

	mu sync.Mutex
	// queue holds pending submissions sorted by round; guarded by mu.
	queue []poolItem
	// draining marks the single-flight drain goroutine; guarded by mu.
	draining bool
	// tickets indexes every remembered ticket; guarded by mu.
	tickets map[string]*Ticket
	// order is the tickets' FIFO eviction order; guarded by mu.
	order []string
	// seq numbers tickets; guarded by mu.
	seq uint64
	// sinceCkpt counts rounds applied since the last drain checkpoint;
	// guarded by mu.
	sinceCkpt int
}

// newTicketLocked mints a queued ticket, aging out old terminal ones.
func (p *labelPool) newTicketLocked(round int) *Ticket {
	p.seq++
	t := &Ticket{ID: fmt.Sprintf("t%d", p.seq), Round: round, State: TicketQueued}
	p.tickets[t.ID] = t
	p.order = append(p.order, t.ID)
	for len(p.order) > ticketHistory {
		drop := -1
		for i, id := range p.order {
			if p.tickets[id].State != TicketQueued {
				drop = i
				break
			}
		}
		if drop < 0 {
			break // everything queued (bounded by MaxQueuedSubmissions)
		}
		delete(p.tickets, p.order[drop])
		p.order = append(p.order[:drop], p.order[drop+1:]...)
	}
	return t
}

// resolveLocked moves a ticket to a terminal state.
func (p *labelPool) resolveLocked(id string, state TicketState, err error) {
	t, ok := p.tickets[id]
	if !ok {
		return
	}
	t.State = state
	if err != nil {
		t.Error = err.Error()
	}
}

// poolFor returns the session's labelpool, creating it on first use.
// Pools are keyed by session id and survive park/unpark — a queued
// submission must not vanish because the session got evicted.
func (sh *shard) poolFor(id string) *labelPool {
	sh.poolMu.Lock()
	defer sh.poolMu.Unlock()
	p, ok := sh.pools[id]
	if !ok {
		p = &labelPool{id: id, tickets: make(map[string]*Ticket)}
		sh.pools[id] = p
	}
	return p
}

// EnqueueSubmissions admits a batch of round submissions into the
// session's labelpool and returns one queued ticket per submission.
// Validation is all-or-nothing: no submission may collide with a
// queued or in-batch round (ErrDuplicateRound), every labeling must
// reference in-relation rows and in-schema attributes, and the batch
// must fit the queue bound (ErrSubmissionBacklog). On any failure
// nothing is queued and no ticket is issued. A round behind the
// session's current round is admitted and resolved by the drain under
// the idempotency contract: an identical evidence replay of what that
// round recorded resolves applied, anything else fails its ticket
// with a round-mismatch reason.
func (sh *shard) EnqueueSubmissions(ctx context.Context, id string, subs []Submission) ([]Ticket, error) {
	if len(subs) == 0 {
		return nil, badRequest(errors.New("empty submission batch"))
	}
	// One entry acquisition up front: it proves the session exists,
	// unparks it if needed, and reads the relation bounds the labels are
	// validated against. Released before the pool lock.
	e, err := sh.acquire(ctx, id)
	if err != nil {
		return nil, err
	}
	rows := e.sess.Relation().NumRows()
	arity := e.sess.Relation().Schema().Arity()
	e.mu.Unlock()

	for _, s := range subs {
		if err := validateLabels(s.Labels, rows, arity); err != nil {
			return nil, fmt.Errorf("round %d: %w", s.Round, err)
		}
	}

	p := sh.poolFor(id)
	p.mu.Lock()
	queued := make(map[int]bool, len(p.queue)+len(subs))
	for _, it := range p.queue {
		queued[it.round] = true
	}
	for _, s := range subs {
		if queued[s.Round] {
			p.mu.Unlock()
			return nil, fmt.Errorf("%w: round %d", ErrDuplicateRound, s.Round)
		}
		queued[s.Round] = true
	}
	if len(p.queue)+len(subs) > sh.opts.MaxQueuedSubmissions {
		p.mu.Unlock()
		return nil, fmt.Errorf("%w: %d queued, batch of %d exceeds the bound of %d",
			ErrSubmissionBacklog, len(p.queue), len(subs), sh.opts.MaxQueuedSubmissions)
	}
	out := make([]Ticket, len(subs))
	for i, s := range subs {
		t := p.newTicketLocked(s.Round)
		p.queue = append(p.queue, poolItem{round: s.Round, labeled: s.Labels, ticketID: t.ID})
		out[i] = *t
	}
	sort.Slice(p.queue, func(i, j int) bool { return p.queue[i].round < p.queue[j].round })
	// Re-check draining while still holding the pool lock: Shutdown sets
	// the shard's flag and then flushes its pools, so an enqueue that won its
	// acquire just before the flag flipped could otherwise slip items in
	// after the flush already drained this pool. Observing the flag here
	// (under p.mu, which the flush must also take) makes the two cases
	// exhaustive: either the flush sees our items, or we see the flag
	// and roll back.
	sh.mu.Lock()
	draining := sh.draining
	sh.mu.Unlock()
	if draining {
		for _, t := range out {
			delete(p.tickets, t.ID)
		}
		issued := make(map[string]bool, len(out))
		for _, t := range out {
			issued[t.ID] = true
		}
		keepQ := p.queue[:0]
		for _, it := range p.queue {
			if !issued[it.ticketID] {
				keepQ = append(keepQ, it)
			}
		}
		p.queue = keepQ
		keepO := p.order[:0]
		for _, tid := range p.order {
			if !issued[tid] {
				keepO = append(keepO, tid)
			}
		}
		p.order = keepO
		p.mu.Unlock()
		return nil, ErrShuttingDown
	}
	p.mu.Unlock()

	sh.kickDrain(p)
	return out, nil
}

// validateLabels is the cheap up-front admission check: row indices in
// the relation, marked attributes in the schema, no duplicate pairs.
// What it cannot check — whether a pair will be presented in that
// round — is the drain's job (unpresented pairs become revisions or
// errors exactly as on the direct submit path).
func validateLabels(labeled []belief.Labeling, rows, arity int) error {
	seen := make(map[[2]int]bool, len(labeled))
	for _, l := range labeled {
		if l.Pair.A < 0 || l.Pair.B < 0 || l.Pair.A >= rows || l.Pair.B >= rows {
			return badRequest(fmt.Errorf("pair (%d,%d) outside the relation's %d rows", l.Pair.A, l.Pair.B, rows))
		}
		if l.Pair.A == l.Pair.B {
			return badRequest(fmt.Errorf("pair (%d,%d) compares a row with itself", l.Pair.A, l.Pair.B))
		}
		key := [2]int{l.Pair.A, l.Pair.B}
		if seen[key] {
			return badRequest(fmt.Errorf("duplicate labeling for pair (%d,%d)", l.Pair.A, l.Pair.B))
		}
		seen[key] = true
		for _, a := range l.Marked.Attrs() {
			if a >= arity {
				return badRequest(fmt.Errorf("marked attribute %d outside the schema's %d attributes", a, arity))
			}
		}
	}
	return nil
}

// Ticket reports the state of one queued submission.
func (sh *shard) Ticket(ctx context.Context, id, ticketID string) (Ticket, error) {
	if err := ctx.Err(); err != nil {
		return Ticket{}, err
	}
	sh.poolMu.Lock()
	p, ok := sh.pools[id]
	sh.poolMu.Unlock()
	if !ok {
		return Ticket{}, fmt.Errorf("%w: session %q has no submission queue", ErrTicketNotFound, id)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	t, ok := p.tickets[ticketID]
	if !ok {
		return Ticket{}, fmt.Errorf("%w: %q", ErrTicketNotFound, ticketID)
	}
	return *t, nil
}

// peekPool returns the session's labelpool without creating one.
func (sh *shard) peekPool(id string) *labelPool {
	sh.poolMu.Lock()
	defer sh.poolMu.Unlock()
	return sh.pools[id]
}

// QueuedSubmissions reports how many submissions are waiting in the
// session's labelpool (0 if it has none).
func (sh *shard) QueuedSubmissions(id string) int {
	p := sh.peekPool(id)
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// kickDrain starts the pool's drain goroutine unless one is already
// running — single-flight per session, so concurrent enqueues never
// contend on the entry lock themselves.
func (sh *shard) kickDrain(p *labelPool) {
	p.mu.Lock()
	if p.draining || len(p.queue) == 0 {
		p.mu.Unlock()
		return
	}
	p.draining = true
	p.mu.Unlock()
	sh.drainWG.Add(1)
	go func() {
		defer sh.drainWG.Done()
		sh.drainLoop(p)
	}()
}

// drainLoop applies queued rounds until the queue is empty or stalls
// on a gap. Each iteration is one entry-lock acquisition covering up
// to DrainBatch rounds.
func (sh *shard) drainLoop(p *labelPool) {
	for {
		progressed := sh.drainOnce(p)
		p.mu.Lock()
		if len(p.queue) == 0 || !progressed {
			// Empty, or stalled on a gap / a dead session: park. The next
			// enqueue or direct submit kicks a fresh drain.
			p.draining = false
			p.mu.Unlock()
			return
		}
		p.mu.Unlock()
	}
}

// drainAcquire locks the session entry for the drain, retrying the
// transient capacity and store errors an unpark can hit. It ignores
// the shard's draining flag: Shutdown flushes the pools before
// checkpointing, and a ticketed submission must not be dropped because
// shutdown won the race.
func (sh *shard) drainAcquire(id string) (*entry, error) {
	ctx := context.Background() //etlint:ignore ctxflow the drain goroutine is detached by design: a ticketed submission must outlive its submitter's request context (see DESIGN §11)
	var err error
	for attempt := 0; attempt < 400; attempt++ {
		var e *entry
		e, err = sh.acquireOpt(ctx, id, true)
		if err == nil {
			return e, nil
		}
		if !errors.Is(err, ErrStoreUnavailable) && !errors.Is(err, ErrTooManySessions) {
			return nil, err
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil, err
}

// drainOnce applies one batch. It reports whether it made progress
// (applied or resolved at least one item); a false return with a
// non-empty queue means the drain should park.
func (sh *shard) drainOnce(p *labelPool) bool {
	e, err := sh.drainAcquire(p.id)
	if err != nil {
		// The session is unreachable (not found, corrupt snapshot, ...):
		// fail every queued ticket so clients see why.
		p.mu.Lock()
		for _, it := range p.queue {
			p.resolveLocked(it.ticketID, TicketFailed, err)
		}
		p.queue = p.queue[:0]
		p.mu.Unlock()
		return false
	}
	defer e.mu.Unlock()

	// Resynchronize against the session under both locks: direct submits
	// may have advanced the round since enqueue.
	cur := e.sess.Rounds()
	var run []poolItem
	p.mu.Lock()
	keep := p.queue[:0]
	for _, it := range p.queue {
		switch {
		case it.round < cur:
			// The round landed while this item was queued (direct submit or
			// an earlier batch). An identical evidence replay is a success —
			// the idempotency contract — anything else lost the race.
			rec := e.sess.Records()[it.round]
			if labelsDigest(it.labeled, nil) == labelsDigest(rec.Labeled, rec.Revisions) {
				p.resolveLocked(it.ticketID, TicketApplied, nil)
			} else {
				p.resolveLocked(it.ticketID, TicketFailed,
					fmt.Errorf("%w: round %d was applied with different labels", ErrRoundMismatch, it.round))
			}
		case it.round == cur+len(run) && len(run) < sh.opts.DrainBatch:
			run = append(run, it)
		default:
			keep = append(keep, it)
		}
	}
	p.queue = keep
	p.mu.Unlock()
	if len(run) == 0 {
		return false // gap: the next round isn't queued yet
	}

	batch := make([][]belief.Labeling, len(run))
	for i, it := range run {
		batch[i] = it.labeled
	}
	applied, serr := e.sess.SubmitBatch(context.Background(), batch) //etlint:ignore ctxflow ticketed rounds are applied by the detached drain; cancelling a submitter must not abort a batch other sessions' tickets ride on

	p.mu.Lock()
	for i := 0; i < applied; i++ {
		p.resolveLocked(run[i].ticketID, TicketApplied, nil)
	}
	if serr != nil && applied < len(run) {
		p.resolveLocked(run[applied].ticketID, TicketFailed, serr)
		if errors.Is(serr, game.ErrPoolExhausted) {
			// The session is complete: nothing queued can ever apply.
			for _, it := range run[applied+1:] {
				p.resolveLocked(it.ticketID, TicketFailed, serr)
			}
			for _, it := range p.queue {
				p.resolveLocked(it.ticketID, TicketFailed, serr)
			}
			p.queue = p.queue[:0]
		} else {
			// A later queued round may still apply once the failed round is
			// resubmitted; requeue the untouched tail.
			p.queue = append(p.queue, run[applied+1:]...)
			sort.Slice(p.queue, func(i, j int) bool { return p.queue[i].round < p.queue[j].round })
		}
	}
	p.sinceCkpt += applied
	ckpt := sh.opts.CheckpointEvery > 0 && p.sinceCkpt >= sh.opts.CheckpointEvery
	if ckpt {
		p.sinceCkpt = 0
	}
	p.mu.Unlock()

	if applied > 0 {
		sh.notifyStreams(p.id)
		// WAL-era durability: the whole applied run rides one group
		// commit (one append call, one fsync shared with whatever other
		// sessions' drains queued meanwhile) before the tickets' rounds
		// count as durable. Failure degrades the session and keeps the
		// deltas for the next flush, exactly like the direct-submit path.
		//etlint:ignore ctxflow ticketed rounds are persisted by the detached drain; a submitter's context must not abort a group commit other sessions ride on
		_ = sh.flushWal(context.Background(), e)
	}
	if ckpt && e.sess.PendingCount() == 0 {
		// With a WAL-backed store this snapshot is the compaction point —
		// the piggyback that used to be the only durability is now just
		// the fold that lets the log drop committed segments. Without a
		// WAL it remains the amortized checkpoint: one snapshot per
		// CheckpointEvery applied rounds, taken while we still hold the
		// entry lock. Failure leaves the session live and degraded,
		// exactly like an explicit Snapshot; the drain keeps going.
		if snap, err := e.sess.Snapshot(); err == nil {
			//etlint:ignore ctxflow amortized checkpoints belong to the drain's lifetime, not any request's; a caller context here could tear a snapshot mid-write
			if err := sh.storeRetry(context.Background(), "checkpointing "+e.id, func(ctx context.Context) error {
				return sh.store.Put(ctx, e.id, snap)
			}); err != nil {
				sh.setDegraded(e.id, true)
			} else {
				e.snapshotLandedLocked()
				sh.setDegraded(e.id, false)
			}
		}
	}
	return applied > 0 || serr != nil
}

// flushPools kicks a drain for every pool with queued work. Called by
// Shutdown before checkpointing (the caller waits on drainWG).
func (sh *shard) flushPools() {
	sh.poolMu.Lock()
	pools := make([]*labelPool, 0, len(sh.pools))
	for _, p := range sh.pools {
		pools = append(pools, p)
	}
	sh.poolMu.Unlock()
	for _, p := range pools {
		sh.kickDrain(p)
	}
}

// EnqueueSubmissions admits a batch of round submissions into the
// session's labelpool on its home shard; see the shard method above
// for the admission contract.
func (m *Manager) EnqueueSubmissions(ctx context.Context, id string, subs []Submission) ([]Ticket, error) {
	return m.shardFor(id).EnqueueSubmissions(ctx, id, subs)
}

// Ticket reports the state of one queued submission.
func (m *Manager) Ticket(ctx context.Context, id, ticketID string) (Ticket, error) {
	return m.shardFor(id).Ticket(ctx, id, ticketID)
}

// QueuedSubmissions reports how many submissions are waiting in the
// session's labelpool (0 if it has none).
func (m *Manager) QueuedSubmissions(id string) int {
	return m.shardFor(id).QueuedSubmissions(id)
}
