package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"exptrain/internal/belief"
	"exptrain/internal/dataset"
	"exptrain/internal/game"
	"exptrain/internal/persist"
	"exptrain/internal/persist/faulty"
	"exptrain/internal/persist/wal"
)

// walFingerprint captures a session's full trajectory — per-round
// measurements plus the learner's top beliefs, floats in %x — for
// bit-exact parity checks between recovered and uninterrupted runs.
func walFingerprint(ctx context.Context, m *Manager, id string) (out []string, err error) {
	rvs, err := m.Rounds(ctx, id)
	if err != nil {
		return nil, err
	}
	for _, rv := range rvs {
		out = append(out, fmt.Sprintf("round %d: labeled=%d revised=%d mae=%x payoff=%x",
			rv.Round, rv.Labeled, rv.Revised, rv.MAE, rv.Payoff))
	}
	hyps, err := m.TopBelief(ctx, id, 16)
	if err != nil {
		return nil, err
	}
	for _, h := range hyps {
		out = append(out, fmt.Sprintf("%s conf=%x ci=[%x,%x]", h.FD, h.Confidence, h.CILow, h.CIHigh))
	}
	return out, nil
}

// walPlayRound advances one session by a full next+submit round,
// labeling every presented pair.
func walPlayRound(ctx context.Context, m *Manager, id string) error {
	pairs, err := m.Next(ctx, id)
	if err != nil {
		return err
	}
	labeled := make([]belief.Labeling, len(pairs))
	for i, p := range pairs {
		labeled[i] = belief.Labeling{Pair: dataset.NewPair(p.A, p.B)}
	}
	_, err = m.Submit(ctx, id, UncheckedRound, labeled)
	return err
}

// TestManagerWalSubmitDurability is the service-level WAL contract: a
// submit that acked is durable via genesis snapshot + appended round
// deltas alone — no per-round snapshots — and a session recovered from
// the reopened store resumes draw-exact: its continued trajectory is
// bit-identical to a run that never crashed.
func TestManagerWalSubmitDurability(t *testing.T) {
	ctx := context.Background()
	storeDir, walDir := t.TempDir(), t.TempDir()
	const rounds = 3

	dir, err := persist.NewDirStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	ws, _, err := wal.OpenStore(dir, walDir, wal.StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(Options{Store: ws})
	info, err := m.Create(ctx, datasetSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rounds; r++ {
		if err := walPlayRound(ctx, m, info.ID); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}
	h := m.Health()
	if h.Wal == nil {
		t.Fatal("Health over a WAL store must report wal counters")
	}
	if h.Wal.Appended != rounds {
		t.Fatalf("wal.Appended = %d, want %d", h.Wal.Appended, rounds)
	}
	var appended uint64
	for _, s := range h.Shards {
		appended += s.WalAppended
		if s.WalPending != 0 {
			t.Fatalf("shard %d has %d pending wal rounds after acked submits", s.Shard, s.WalPending)
		}
	}
	if appended != rounds {
		t.Fatalf("shard WalAppended sums to %d, want %d", appended, rounds)
	}
	// The inner snapshot is still the genesis: submits never paid a
	// snapshot rewrite.
	base, err := dir.Get(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.History) != 0 {
		t.Fatalf("genesis snapshot has %d rounds; submits rewrote it", len(base.History))
	}

	// The crash: the process dies without Shutdown — no parting
	// checkpoints. Only the genesis snapshot and the log survive.
	if err := ws.Close(); err != nil {
		t.Fatal(err)
	}

	dir2, err := persist.NewDirStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	ws2, rec, err := wal.OpenStore(dir2, walDir, wal.StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ws2.Close()
	if len(rec.Deltas) != rounds {
		t.Fatalf("recovery replayed %d deltas, want %d", len(rec.Deltas), rounds)
	}
	snap, err := ws2.Get(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.History) != rounds {
		t.Fatalf("recovered session has %d rounds, want %d — an acked submit was lost", len(snap.History), rounds)
	}

	// Draw-exactness: resume the recovered session, play one more round,
	// and demand bit-identical parity with an uninterrupted reference.
	m2 := NewManager(Options{Store: ws2})
	resumed, err := m2.Resume(ctx, info.ID, datasetSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := walPlayRound(ctx, m2, resumed.ID); err != nil {
		t.Fatal(err)
	}
	got, err := walFingerprint(ctx, m2, resumed.ID)
	if err != nil {
		t.Fatal(err)
	}

	ref := NewManager(Options{})
	refInfo, err := ref.Create(ctx, datasetSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rounds+1; r++ {
		if err := walPlayRound(ctx, ref, refInfo.ID); err != nil {
			t.Fatal(err)
		}
	}
	want, err := walFingerprint(ctx, ref, refInfo.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("fingerprint length %d, reference %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recovered session diverges from the uninterrupted reference at line %d:\nrecovered: %s\nreference: %s",
				i, got[i], want[i])
		}
	}
}

// TestChaosWalReplicaLoss is the WAL acceptance chaos test: a manager
// whose durability runs through a 3-replica quorum of WAL-backed
// stores — every operation flaky at 30%, one replica killed for good
// mid-run — must serve a 64-session concurrent workload and lose zero
// submitted rounds across a simulated process crash: the final phase's
// rounds are covered by group-committed appends only (no snapshots),
// and recovery is genesis + replay through the reopened quorum. Run
// under -race (make chaos); ET_CHAOS=1 deepens the workload.
func TestChaosWalReplicaLoss(t *testing.T) {
	sessions, workers := 64, 32
	phase1, phase2 := 2, 2
	if os.Getenv("ET_CHAOS") != "" {
		// Deepen by fleet size, not rounds: the tiny CSV fixture's
		// candidate pool supports exactly phase1+phase2 rounds.
		sessions = 128
	}
	const chaosSeed = 2027
	ctx := context.Background()

	storeDirs := make([]string, 3)
	walDirs := make([]string, 3)
	walStores := make([]*wal.Store, 3)
	replicas := make([]*faulty.Store, 3)
	stores := make([]persist.Store, 3)
	for i := range replicas {
		storeDirs[i], walDirs[i] = t.TempDir(), t.TempDir()
		dir, err := persist.NewDirStore(storeDirs[i])
		if err != nil {
			t.Fatal(err)
		}
		ws, _, err := wal.OpenStore(dir, walDirs[i], wal.StoreConfig{})
		if err != nil {
			t.Fatal(err)
		}
		walStores[i] = ws
		replicas[i] = faulty.Wrap(ws, faulty.Config{Seed: chaosSeed + uint64(i), FailRate: 0.3})
		stores[i] = replicas[i]
	}
	ms, err := persist.NewMultiStore(stores, 2)
	if err != nil {
		t.Fatal(err)
	}
	if persist.AppenderOf(ms) == nil {
		t.Fatal("a quorum of WAL replicas must advertise round appends")
	}
	m := NewManager(Options{
		MaxSessions: 16, // constant park/unpark churn across 64 sessions
		IdleTTL:     time.Minute,
		Store:       ms,
		Retry:       fastRetry(),
		RetrySeed:   chaosSeed,
	})

	transient := func(err error) bool {
		return errors.Is(err, ErrStoreUnavailable) || errors.Is(err, ErrTooManySessions)
	}
	retry := func(op func() error) error {
		for tries := 0; ; tries++ {
			err := op()
			if err == nil || !transient(err) || tries > 5000 {
				return err
			}
			time.Sleep(200 * time.Microsecond)
		}
	}

	// Replica 0 dies for good halfway through phase 1.
	var submitted atomic.Int64
	var killOnce sync.Once
	kill := int64(sessions*phase1) / 2

	ids := make([]string, sessions)
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	perWorker := sessions / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < perWorker; k++ {
				sess := w*perWorker + k
				var info Info
				if err := retry(func() (err error) {
					info, err = m.Create(ctx, testSpec())
					return err
				}); err != nil {
					errCh <- fmt.Errorf("session %d create: %w", sess, err)
					return
				}
				ids[sess] = info.ID
				for round := 0; round < phase1; round++ {
					for {
						err := retry(func() error { return walPlayRound(ctx, m, info.ID) })
						if errors.Is(err, game.ErrNoRoundPending) {
							continue // eviction discarded the pending round; re-present
						}
						if err != nil {
							errCh <- fmt.Errorf("session %d round %d: %w", sess, round, err)
							return
						}
						break
					}
					if submitted.Add(1) == kill {
						killOnce.Do(func() { replicas[0].SetFailRate(1) })
					}
					if sess%2 == 0 {
						_ = m.Evict(ctx, info.ID)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	for i, r := range replicas {
		if ops, injected := r.Stats(); injected == 0 {
			t.Fatalf("replica %d: no faults injected over %d ops; chaos exercised nothing", i, ops)
		}
	}

	// The surviving replicas heal; replica 0 stays dead. Every session
	// checkpoints once through the bare quorum — healing any degraded
	// mark and setting the compaction watermark — and then phase 2 rides
	// the WAL alone: the rounds below are durable only as appends.
	replicas[1].ClearFaults()
	replicas[2].ClearFaults()
	for sess, id := range ids {
		if err := retry(func() (err error) {
			_, err = m.Snapshot(ctx, id)
			return err
		}); err != nil {
			t.Fatalf("session %d heal checkpoint: %v", sess, err)
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < perWorker; k++ {
				sess := w*perWorker + k
				for round := 0; round < phase2; round++ {
					for {
						err := retry(func() error { return walPlayRound(ctx, m, ids[sess]) })
						if errors.Is(err, game.ErrNoRoundPending) {
							continue
						}
						if err != nil {
							errCh <- fmt.Errorf("session %d phase-2 round %d: %w", sess, round, err)
							return
						}
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	h := m.Health()
	if h.Degraded != 0 {
		t.Fatalf("Health after faults cleared = %+v, want no degraded sessions", h)
	}
	if h.Wal == nil || h.Wal.Appended == 0 {
		t.Fatalf("Health.Wal = %+v, want non-zero appended records across the quorum", h.Wal)
	}

	// The crash: no Shutdown, no parting checkpoints — the logs and the
	// last snapshots are all that survive the process.
	ms.Flush()
	for _, ws := range walStores {
		if err := ws.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Recovery: reopen every replica, reconcile the quorum, and demand
	// every submitted round back — phase 2's exist nowhere but the WAL,
	// and replica 0 has been dead since mid-phase-1.
	reopened := make([]persist.Store, 3)
	walReopened := make([]*wal.Store, 3)
	for i := range reopened {
		dir, err := persist.NewDirStore(storeDirs[i])
		if err != nil {
			t.Fatal(err)
		}
		ws, _, err := wal.OpenStore(dir, walDirs[i], wal.StoreConfig{})
		if err != nil {
			t.Fatalf("replica %d reopen: %v", i, err)
		}
		defer ws.Close()
		reopened[i] = ws
		walReopened[i] = ws
	}
	ms2, err := persist.NewMultiStore(reopened, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ms2.Scan(ctx); err != nil {
		t.Fatalf("reconciling scan: %v", err)
	}
	ms2.Flush()
	total := phase1 + phase2
	for sess, id := range ids {
		snap, err := ms2.Get(ctx, id)
		if err != nil {
			t.Fatalf("session %d: %s unreadable after crash recovery: %v", sess, id, err)
		}
		if got := len(snap.History); got != total {
			t.Fatalf("session %d: recovered %d rounds, want %d — a submitted round was lost", sess, got, total)
		}
	}
	// And the reconciling scan converged the dead replica too: after
	// repair, every replica alone carries every session in full.
	for i, ws := range walReopened {
		for sess, id := range ids {
			snap, err := ws.Get(ctx, id)
			if err != nil {
				t.Fatalf("replica %d session %d after scan: %v", i, sess, err)
			}
			if got := len(snap.History); got != total {
				t.Fatalf("replica %d session %d has %d rounds after scan, want %d", i, sess, got, total)
			}
		}
	}
}
