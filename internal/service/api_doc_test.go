package service

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"exptrain/internal/persist"
)

// kindRowRe matches one row of API.md's error-kind table:
// | `kind` | status | meaning |
var kindRowRe = regexp.MustCompile("^\\|\\s*`([a-z_]+)`\\s*\\|\\s*(\\d{3})\\s*\\|")

// TestAPIDocKindTable keeps API.md's error-kind table in lockstep with
// the registry: same kinds, same statuses, same order (the registry is
// append-only, so order is part of the contract). A registry edit
// without the matching doc edit — or vice versa — fails plain go test.
func TestAPIDocKindTable(t *testing.T) {
	f, err := os.Open(filepath.Join("..", "..", "API.md"))
	if err != nil {
		t.Fatalf("API.md must ship with the module: %v", err)
	}
	defer f.Close()

	type row struct {
		kind   string
		status int
	}
	var doc []row
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := kindRowRe.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		status, err := strconv.Atoi(m[2])
		if err != nil {
			t.Fatalf("unparseable status in API.md row %q", sc.Text())
		}
		doc = append(doc, row{kind: m[1], status: status})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(doc) == 0 {
		t.Fatal("no kind-table rows found in API.md; did the table format change?")
	}

	reg := Kinds()
	var regRows, docRows []string
	for _, k := range reg {
		regRows = append(regRows, fmt.Sprintf("%s=%d", k.Kind, k.Status))
	}
	for _, r := range doc {
		docRows = append(docRows, fmt.Sprintf("%s=%d", r.kind, r.status))
	}
	if got, want := strings.Join(docRows, "\n"), strings.Join(regRows, "\n"); got != want {
		t.Errorf("API.md kind table out of sync with service.Kinds():\nAPI.md:\n%s\n\nregistry:\n%s", got, want)
	}
}

// TestAPIDocWalStats keeps API.md's healthz WAL metrics table in
// lockstep with persist.WalStats: same JSON field names, same order. A
// struct edit without the matching doc edit — or vice versa — fails
// plain go test. The per-shard wal_appended/wal_pending fields
// (ShardHealth) must be documented by name too.
func TestAPIDocWalStats(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "API.md"))
	if err != nil {
		t.Fatalf("API.md must ship with the module: %v", err)
	}
	lines := strings.Split(string(data), "\n")
	start := -1
	for i, l := range lines {
		if strings.Contains(l, "`wal` object") {
			start = i
			break
		}
	}
	if start < 0 {
		t.Fatal("API.md: Health section no longer introduces the `wal` object")
	}

	// The first table after the marker is the metrics table; it ends at
	// the first non-row line.
	rowRe := regexp.MustCompile("^\\|\\s*`([a-z0-9_]+)`\\s*\\|")
	var doc []string
	inTable := false
	for _, l := range lines[start:] {
		if m := rowRe.FindStringSubmatch(strings.TrimSpace(l)); m != nil {
			inTable = true
			doc = append(doc, m[1])
			continue
		}
		if inTable && !strings.HasPrefix(strings.TrimSpace(l), "|") {
			break
		}
	}

	var want []string
	rt := reflect.TypeOf(persist.WalStats{})
	for i := 0; i < rt.NumField(); i++ {
		want = append(want, strings.Split(rt.Field(i).Tag.Get("json"), ",")[0])
	}
	if got, w := strings.Join(doc, "\n"), strings.Join(want, "\n"); got != w {
		t.Errorf("API.md wal table out of sync with persist.WalStats:\nAPI.md:\n%s\n\nstruct:\n%s", got, w)
	}

	sh := reflect.TypeOf(ShardHealth{})
	for _, field := range []string{"WalAppended", "WalPending"} {
		f, ok := sh.FieldByName(field)
		if !ok {
			t.Fatalf("ShardHealth no longer has %s", field)
		}
		name := strings.Split(f.Tag.Get("json"), ",")[0]
		if !strings.Contains(string(data), "`"+name+"`") {
			t.Errorf("API.md does not document the per-shard `%s` field", name)
		}
	}
}
