package service

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// kindRowRe matches one row of API.md's error-kind table:
// | `kind` | status | meaning |
var kindRowRe = regexp.MustCompile("^\\|\\s*`([a-z_]+)`\\s*\\|\\s*(\\d{3})\\s*\\|")

// TestAPIDocKindTable keeps API.md's error-kind table in lockstep with
// the registry: same kinds, same statuses, same order (the registry is
// append-only, so order is part of the contract). A registry edit
// without the matching doc edit — or vice versa — fails plain go test.
func TestAPIDocKindTable(t *testing.T) {
	f, err := os.Open(filepath.Join("..", "..", "API.md"))
	if err != nil {
		t.Fatalf("API.md must ship with the module: %v", err)
	}
	defer f.Close()

	type row struct {
		kind   string
		status int
	}
	var doc []row
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := kindRowRe.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		status, err := strconv.Atoi(m[2])
		if err != nil {
			t.Fatalf("unparseable status in API.md row %q", sc.Text())
		}
		doc = append(doc, row{kind: m[1], status: status})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(doc) == 0 {
		t.Fatal("no kind-table rows found in API.md; did the table format change?")
	}

	reg := Kinds()
	var regRows, docRows []string
	for _, k := range reg {
		regRows = append(regRows, fmt.Sprintf("%s=%d", k.Kind, k.Status))
	}
	for _, r := range doc {
		docRows = append(docRows, fmt.Sprintf("%s=%d", r.kind, r.status))
	}
	if got, want := strings.Join(docRows, "\n"), strings.Join(regRows, "\n"); got != want {
		t.Errorf("API.md kind table out of sync with service.Kinds():\nAPI.md:\n%s\n\nregistry:\n%s", got, want)
	}
}
