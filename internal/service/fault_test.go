package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"testing"
	"time"

	"exptrain/internal/persist"
	"exptrain/internal/persist/faulty"
	"exptrain/internal/sampling"
)

// fastRetry keeps fault tests quick: full retry semantics, tiny delays.
func fastRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
}

func TestManagerEvictFailureDegradesSession(t *testing.T) {
	ctx := context.Background()
	fs := faulty.Wrap(persist.NewMemStore(), faulty.Config{
		Seed: 21, FailRate: 1, Ops: []faulty.Op{faulty.OpPut},
	})
	m := NewManager(Options{Store: fs, Retry: fastRetry(), RetrySeed: 21})
	info, err := m.Create(ctx, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	playRound(t, m, info.ID)

	if err := m.Evict(ctx, info.ID); !errors.Is(err, ErrStoreUnavailable) {
		t.Fatalf("Evict with dead store = %v, want ErrStoreUnavailable", err)
	}
	// The failed checkpoint must not drop the session: it stays live,
	// degraded, and still serves rounds.
	if live, parked := m.Counts(); live != 1 || parked != 0 {
		t.Fatalf("Counts = (%d, %d), want (1, 0)", live, parked)
	}
	got, err := m.Get(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Degraded || got.Parked {
		t.Fatalf("Info = %+v, want degraded and not parked", got)
	}
	playRound(t, m, info.ID)

	h := m.Health()
	if h.OK || h.Degraded != 1 || h.StoreFailures == 0 || h.StoreError == "" {
		t.Fatalf("Health = %+v, want sick with one degraded session", h)
	}

	// Store heals → the next eviction succeeds and clears the mark.
	fs.ClearFaults()
	if err := m.Evict(ctx, info.ID); err != nil {
		t.Fatalf("Evict after faults cleared: %v", err)
	}
	if h := m.Health(); !h.OK || h.Degraded != 0 || h.Parked != 1 {
		t.Fatalf("Health after recovery = %+v", h)
	}
	// Nothing was lost across the degraded episode: both rounds resume.
	got, err = m.Get(ctx, info.ID)
	if err != nil || !got.Parked {
		t.Fatalf("Get parked = %+v, %v", got, err)
	}
	pairs, err := m.Next(ctx, info.ID) // transparently unparks
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Fatal("no pairs after resume")
	}
	if got, err = m.Get(ctx, info.ID); err != nil || got.Rounds != 2 {
		t.Fatalf("resumed Rounds = %d (%v), want 2", got.Rounds, err)
	}
}

// TestManagerUnparkFailedConcurrentAcquires races many acquires of one
// parked session against a store whose Gets always fail: every acquire
// must observe the session rolled back to parked (surfacing
// ErrStoreUnavailable), none may panic, deadlock, or lose the
// snapshot. Run under -race.
func TestManagerUnparkFailedConcurrentAcquires(t *testing.T) {
	ctx := context.Background()
	fs := faulty.Wrap(persist.NewMemStore(), faulty.Config{
		Seed: 5, FailRate: 1, Ops: []faulty.Op{faulty.OpGet},
	})
	m := NewManager(Options{Store: fs, Retry: fastRetry(), RetrySeed: 5})
	info, err := m.Create(ctx, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	playRound(t, m, info.ID)
	if err := m.Evict(ctx, info.ID); err != nil {
		t.Fatal(err)
	}

	const workers = 16
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, errs[w] = m.TopBelief(ctx, info.ID, 5)
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if !errors.Is(err, ErrStoreUnavailable) {
			t.Fatalf("worker %d: err = %v, want ErrStoreUnavailable", w, err)
		}
	}
	// Every failed unpark must roll back to parked — the snapshot is
	// still in the store, nothing leaked into the live map.
	if live, parked := m.Counts(); live != 0 || parked != 1 {
		t.Fatalf("Counts = (%d, %d), want (0, 1)", live, parked)
	}

	// Once the store heals, exactly one acquire resumes the session and
	// the round history is intact.
	fs.ClearFaults()
	if _, err := m.TopBelief(ctx, info.ID, 5); err != nil {
		t.Fatalf("TopBelief after faults cleared: %v", err)
	}
	got, err := m.Get(ctx, info.ID)
	if err != nil || got.Rounds != 1 {
		t.Fatalf("resumed Rounds = %d (%v), want 1", got.Rounds, err)
	}
}

// TestManagerSweepContinuesPastFailures: one session's checkpoint
// failure must not stop the sweep from parking the others, and the
// next sweep retries (and recovers) the degraded one.
func TestManagerSweepContinuesPastFailures(t *testing.T) {
	ctx := context.Background()
	// MaxAttempts 1 disables retries so FailEveryN maps 1:1 onto sweep
	// evictions: the 2nd Put fails, all others succeed.
	fs := faulty.Wrap(persist.NewMemStore(), faulty.Config{Seed: 9, FailEveryN: 2})
	m := NewManager(Options{
		Store:   fs,
		Retry:   RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
		IdleTTL: time.Minute,
	})
	base := time.Now()
	m.setNow(func() time.Time { return base })
	for i := 0; i < 2; i++ {
		if _, err := m.Create(ctx, datasetSpec(uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	m.setNow(func() time.Time { return base.Add(time.Hour) })

	swept, err := m.Sweep(ctx)
	if !errors.Is(err, ErrStoreUnavailable) {
		t.Fatalf("Sweep err = %v, want ErrStoreUnavailable joined in", err)
	}
	if len(swept) != 1 {
		t.Fatalf("swept %v, want exactly one despite the failure", swept)
	}
	if live, parked := m.Counts(); live != 1 || parked != 1 {
		t.Fatalf("Counts = (%d, %d), want (1, 1)", live, parked)
	}
	if h := m.Health(); h.Degraded != 1 {
		t.Fatalf("Health.Degraded = %d, want 1", h.Degraded)
	}

	// The follow-up sweep is the degraded session's recovery path.
	swept, err = m.Sweep(ctx)
	if err != nil || len(swept) != 1 {
		t.Fatalf("second Sweep = %v, %v; want the degraded session parked", swept, err)
	}
	if h := m.Health(); h.Degraded != 0 || h.Parked != 2 {
		t.Fatalf("Health after recovery sweep = %+v", h)
	}
}

func TestManagerShutdownKeepsFailedSessionsResident(t *testing.T) {
	ctx := context.Background()
	fs := faulty.Wrap(persist.NewMemStore(), faulty.Config{
		Seed: 13, FailRate: 1, Ops: []faulty.Op{faulty.OpPut},
	})
	m := NewManager(Options{Store: fs, Retry: fastRetry(), RetrySeed: 13})
	info, err := m.Create(ctx, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	playRound(t, m, info.ID)

	if err := m.Shutdown(ctx); !errors.Is(err, ErrStoreUnavailable) {
		t.Fatalf("Shutdown with dead store = %v, want ErrStoreUnavailable", err)
	}
	// The session must not be dropped on the floor: still resident,
	// degraded, waiting for a second Shutdown once the store heals.
	if live, _ := m.Counts(); live != 1 {
		t.Fatalf("live = %d after failed Shutdown, want 1", live)
	}
	fs.ClearFaults()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown after faults cleared: %v", err)
	}
	if live, parked := m.Counts(); live != 0 || parked != 1 {
		t.Fatalf("Counts = (%d, %d) after clean Shutdown, want (0, 1)", live, parked)
	}
}

// TestServerFaultSurface exercises the HTTP mapping of the fault layer:
// healthz flips to 503 while degraded, store failures answer 503 +
// Retry-After with kind "store_unavailable", and a draining manager is
// distinguishable from capacity pressure.
func TestServerFaultSurface(t *testing.T) {
	fs := faulty.Wrap(persist.NewMemStore(), faulty.Config{
		Seed: 31, FailRate: 1, Ops: []faulty.Op{faulty.OpPut},
	})
	m, c, ts := newTestServer(t, Options{Store: fs, Retry: fastRetry(), RetrySeed: 31})

	var h Health
	c.expect(http.StatusOK, "GET", "/v1/healthz", nil, &h)
	if !h.OK {
		t.Fatalf("healthz = %+v, want ok on a fresh manager", h)
	}

	var info Info
	c.expect(http.StatusCreated, "POST", "/v1/sessions", CreateRequest{CSV: testCSV, Method: sampling.MethodRandom, K: 3, Seed: 11}, &info)
	c.playHTTPRound(info.ID)

	// Parking hits the dead store: 503, Retry-After, store_unavailable.
	resp, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+info.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ts.Client().Do(resp)
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, res)
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("DELETE status = %d, want 503; body %s", res.StatusCode, body)
	}
	if res.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if kind := errKind(t, body); kind != "store_unavailable" {
		t.Fatalf("kind = %q, want store_unavailable", kind)
	}

	// healthz now reports the sick store and answers 503 for the LB.
	res, err = ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body = readBody(t, res)
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz status = %d, want 503; body %s", res.StatusCode, body)
	}
	if res.Header.Get("Retry-After") == "" {
		t.Fatal("unhealthy healthz without Retry-After")
	}

	// The degraded session still serves reads and rounds.
	c.expect(http.StatusOK, "GET", "/v1/sessions/"+info.ID, nil, &info)
	if !info.Degraded {
		t.Fatalf("Info = %+v, want Degraded", info)
	}
	c.playHTTPRound(info.ID)

	// Store heals: parking succeeds, healthz recovers.
	fs.ClearFaults()
	c.expect(http.StatusOK, "DELETE", "/v1/sessions/"+info.ID, nil, nil)
	c.expect(http.StatusOK, "GET", "/v1/healthz", nil, &h)
	if !h.OK || h.Degraded != 0 || h.Parked != 1 {
		t.Fatalf("healthz after recovery = %+v", h)
	}

	// Draining answers 503 shutting_down — a different kind than the
	// capacity 429, so clients can tell fail-over from shed-load.
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	status, raw := c.do("POST", "/v1/sessions", CreateRequest{CSV: testCSV, K: 3}, nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("create while draining = %d, want 503; body %s", status, raw)
	}
	if kind := errKind(t, raw); kind != "shutting_down" {
		t.Fatalf("kind = %q, want shutting_down", kind)
	}
}

func readBody(t *testing.T, res *http.Response) []byte {
	t.Helper()
	defer res.Body.Close()
	var buf [4096]byte
	n, _ := res.Body.Read(buf[:])
	return buf[:n]
}

func errKind(t *testing.T, raw []byte) string {
	t.Helper()
	var eb APIError
	if err := json.Unmarshal(raw, &eb); err != nil {
		t.Fatalf("decoding error body %q: %v", raw, err)
	}
	return eb.Kind
}
