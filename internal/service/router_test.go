package service

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"exptrain/internal/persist"
	"exptrain/internal/persist/faulty"
)

// TestRendezvousRouting pins the two properties the sharded service
// leans on: routing is sticky for a fixed shard count, and growing the
// shard set moves only ~K/N sessions — all of them onto the new shard.
func TestRendezvousRouting(t *testing.T) {
	const keys = 5000
	ids := make([]string, keys)
	for i := range ids {
		// Both the minted form and arbitrary resume-style ids route.
		if i%2 == 0 {
			ids[i] = fmt.Sprintf("sess-%d", i)
		} else {
			ids[i] = fmt.Sprintf("restored-%d-x", i)
		}
	}

	t.Run("sticky and balanced", func(t *testing.T) {
		for _, n := range []int{1, 2, 4, 16} {
			counts := make([]int, n)
			for _, id := range ids {
				s := pickShard(id, n)
				if again := pickShard(id, n); again != s {
					t.Fatalf("n=%d: pickShard(%q) flapped %d -> %d", n, id, s, again)
				}
				counts[s]++
			}
			// Loose balance bound: rendezvous hashing is uniform in
			// expectation; a shard at 0 or at 2x the mean means the score
			// mix is broken, not that the test is unlucky.
			mean := keys / n
			for s, c := range counts {
				if c == 0 {
					t.Fatalf("n=%d: shard %d owns no sessions", n, s)
				}
				if c > 2*mean {
					t.Fatalf("n=%d: shard %d owns %d of %d sessions (mean %d)", n, s, c, keys, mean)
				}
			}
		}
	})

	t.Run("growth moves ~K/N keys, only onto the new shard", func(t *testing.T) {
		for _, n := range []int{1, 3, 15} {
			moved := 0
			for _, id := range ids {
				before := pickShard(id, n)
				after := pickShard(id, n+1)
				if before == after {
					continue
				}
				if after != n {
					t.Fatalf("n=%d->%d: %q moved %d -> %d; rendezvous growth may only move keys onto the new shard",
						n, n+1, id, before, after)
				}
				moved++
			}
			expect := keys / (n + 1)
			if moved < expect/2 || moved > 2*expect {
				t.Fatalf("n=%d->%d: %d keys moved, want ~%d (K/(N+1))", n, n+1, moved, expect)
			}
		}
	})
}

// TestShardJitterSeeds pins the retry-jitter fix: every shard draws its
// backoff jitter from its own (RetrySeed, shard id)-derived stream, so
// a store outage cannot synchronize backoff storms across shards — and
// the derivation stays reproducible for fault-injection tests.
func TestShardJitterSeeds(t *testing.T) {
	for _, retrySeed := range []uint64{1, 2026, ^uint64(0)} {
		seen := make(map[uint64]int)
		for id := 0; id < 64; id++ {
			s := jitterSeed(retrySeed, id)
			if s == 0 {
				t.Fatalf("jitterSeed(%d, %d) = 0; stats.NewRNG needs a nonzero seed", retrySeed, id)
			}
			if s != jitterSeed(retrySeed, id) {
				t.Fatalf("jitterSeed(%d, %d) not reproducible", retrySeed, id)
			}
			if prev, dup := seen[s]; dup {
				t.Fatalf("shards %d and %d share jitter seed %d under RetrySeed %d", prev, id, s, retrySeed)
			}
			seen[s] = id
		}
	}
	// And the seeds actually decorrelate the schedules: two shards of
	// one manager must not draw identical first-jitter values.
	m := NewManager(Options{Shards: 4, RetrySeed: 7})
	first := make(map[float64]int)
	for i, sh := range m.shards {
		v := sh.rrng.Float64()
		if prev, dup := first[v]; dup {
			t.Fatalf("shards %d and %d drew the same first jitter %v", prev, i, v)
		}
		first[v] = i
	}
}

// sessionDigest reads a session's checkpoint from the store and
// returns its exact encoded bytes.
func sessionDigest(t *testing.T, store persist.Store, id string) []byte {
	t.Helper()
	snap, err := store.Get(context.Background(), id)
	if err != nil {
		t.Fatalf("snapshot %s: %v", id, err)
	}
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestShardedGoldenParity is the determinism acceptance test for the
// routing refactor: a seeded multi-session workload must produce
// bit-identical per-session trajectories under 1 shard and under 16 —
// the shard a session lands on may change its lock domain, never its
// rounds. Each session's full trajectory is compared via its encoded
// shutdown checkpoint.
func TestShardedGoldenParity(t *testing.T) {
	const sessions, rounds = 8, 3
	ctx := context.Background()

	play := func(t *testing.T, shards int, store persist.Store) []string {
		m := NewManager(Options{Shards: shards, Store: store})
		ids := make([]string, sessions)
		for i := range ids {
			info, err := m.Create(ctx, datasetSpec(uint64(i)))
			if err != nil {
				t.Fatal(err)
			}
			ids[i] = info.ID
		}
		for r := 0; r < rounds; r++ {
			for _, id := range ids {
				playRound(t, m, id)
			}
		}
		if err := m.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
		return ids
	}

	oneStore, sixteenStore := persist.NewMemStore(), persist.NewMemStore()
	oneIDs := play(t, 1, oneStore)
	sixteenIDs := play(t, 16, sixteenStore)

	// Same creation order ⇒ same minted ids in both topologies.
	for i := range oneIDs {
		if oneIDs[i] != sixteenIDs[i] {
			t.Fatalf("session %d minted as %q under 1 shard, %q under 16", i, oneIDs[i], sixteenIDs[i])
		}
	}
	// The 16-shard run must actually have spread the sessions out, or
	// the parity below proves nothing.
	homes := make(map[int]bool)
	for _, id := range sixteenIDs {
		homes[pickShard(id, 16)] = true
	}
	if len(homes) < 2 {
		t.Fatalf("all %d sessions hashed onto one shard; workload does not exercise routing", sessions)
	}
	for i, id := range oneIDs {
		one := sessionDigest(t, oneStore, id)
		sixteen := sessionDigest(t, sixteenStore, id)
		if !bytes.Equal(one, sixteen) {
			t.Fatalf("session %d (%s, shard %d of 16): trajectory differs between 1 and 16 shards",
				i, id, pickShard(id, 16))
		}
	}
}

// TestShardedHealth exercises the shard-aware healthz surface: the
// aggregate keeps its pre-sharding schema while Shards breaks the same
// counters out per shard and SickestShard points at the one with the
// failing store.
func TestShardedHealth(t *testing.T) {
	ctx := context.Background()
	fs := faulty.Wrap(persist.NewMemStore(), faulty.Config{
		Seed: 99, FailRate: 1, Ops: []faulty.Op{faulty.OpPut},
	})
	m := NewManager(Options{
		Shards: 4,
		Store:  fs,
		Retry:  RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	})
	var infos []Info
	for i := 0; i < 6; i++ {
		info, err := m.Create(ctx, testSpec())
		if err != nil {
			t.Fatal(err)
		}
		infos = append(infos, info)
	}
	h := m.Health()
	if !h.OK || h.Live != 6 || len(h.Shards) != 4 {
		t.Fatalf("healthy baseline = %+v", h)
	}
	var liveSum int
	for i, s := range h.Shards {
		if s.Shard != i {
			t.Fatalf("shard breakdown out of order: %+v", h.Shards)
		}
		liveSum += s.Live
	}
	if liveSum != 6 {
		t.Fatalf("per-shard live counts sum to %d, want 6", liveSum)
	}

	// Evicting through the dead store degrades that session's shard.
	victim := infos[0].ID
	if err := m.Evict(ctx, victim); err == nil {
		t.Fatal("evict through a dead store should fail")
	}
	h = m.Health()
	sick := pickShard(victim, 4)
	if h.OK || h.Degraded != 1 {
		t.Fatalf("after failed evict: %+v", h)
	}
	if h.SickestShard != sick {
		t.Fatalf("SickestShard = %d, want %d (home of %s)", h.SickestShard, sick, victim)
	}
	s := h.Shards[sick]
	if s.OK || s.Degraded != 1 || s.StoreFailures == 0 || s.StoreError == "" {
		t.Fatalf("sick shard health = %+v", s)
	}
	for i, other := range h.Shards {
		if i != sick && (!other.OK || other.StoreFailures != 0) {
			t.Fatalf("healthy shard %d caught the sick shard's counters: %+v", i, other)
		}
	}
	if h.StoreFailures != s.StoreFailures {
		t.Fatalf("aggregate StoreFailures %d != sick shard's %d", h.StoreFailures, s.StoreFailures)
	}

	// A replicated store surfaces per-replica counters in the body.
	ms, err := persist.NewMultiStore([]persist.Store{persist.NewMemStore(), persist.NewMemStore()}, 0)
	if err != nil {
		t.Fatal(err)
	}
	mr := NewManager(Options{Shards: 2, Store: ms})
	info, err := mr.Create(ctx, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mr.Snapshot(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	ms.Flush()
	hr := mr.Health()
	if len(hr.Replicas) != 2 || hr.Replicas[0].Ops == 0 {
		t.Fatalf("replicated store stats missing from health: %+v", hr.Replicas)
	}
}
