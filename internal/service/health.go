package service

import (
	"exptrain/internal/persist"
)

// ShardHealth is one shard's slice of the health report.
type ShardHealth struct {
	// Shard is the shard index (the rendezvous routing target).
	Shard int `json:"shard"`
	// OK is false while any of the shard's sessions is degraded or its
	// last store operation failed.
	OK bool `json:"ok"`
	// Live, Parked and Degraded count sessions homed on this shard
	// (degraded ⊆ live).
	Live     int `json:"live"`
	Parked   int `json:"parked"`
	Degraded int `json:"degraded"`
	// Draining counts sessions with labelpool work still in flight on
	// this shard: a queued submission or an active drain goroutine.
	Draining int `json:"draining"`
	// StoreFailures counts this shard's store operations that exhausted
	// the retry policy since startup; StoreError is the most recent
	// one, empty once an operation succeeds again.
	StoreFailures uint64 `json:"store_failures"`
	StoreError    string `json:"store_error,omitempty"`
	// WalAppended counts round deltas this shard durably appended
	// through the store's WAL (0 on snapshot-only stores).
	WalAppended uint64 `json:"wal_appended,omitempty"`
	// WalPending counts rounds recorded by this shard's live sessions
	// but not yet durably appended — the shard's crash-loss exposure;
	// non-zero steady state means appends are failing.
	WalPending int `json:"wal_pending,omitempty"`
}

// Health implements Shard.
func (sh *shard) Health() ShardHealth {
	sh.mu.Lock()
	h := ShardHealth{
		Shard:         sh.id,
		Live:          len(sh.live),
		Parked:        len(sh.parked),
		Degraded:      len(sh.degraded),
		StoreFailures: sh.storeFails,
		WalAppended:   sh.walAppended,
	}
	if sh.storeErr != nil {
		h.StoreError = sh.storeErr.Error()
	}
	for _, e := range sh.live {
		if e.wal != nil {
			// Lock-free read of the recorder's atomic backlog mirror —
			// health must not queue behind entry locks.
			h.WalPending += e.wal.backlog()
		}
	}
	h.OK = h.Degraded == 0 && sh.storeErr == nil
	sh.mu.Unlock()

	sh.poolMu.Lock()
	pools := make([]*labelPool, 0, len(sh.pools))
	for _, p := range sh.pools {
		pools = append(pools, p)
	}
	sh.poolMu.Unlock()
	for _, p := range pools {
		p.mu.Lock()
		busy := len(p.queue) > 0 || p.draining
		p.mu.Unlock()
		if busy {
			h.Draining++
		}
	}
	return h
}

// sicker ranks two shard healths: degraded sessions first (the
// never-drop promise is at risk), then accumulated store failures,
// then labelpool backlog, then sheer load.
func sicker(a, b ShardHealth) bool {
	if a.Degraded != b.Degraded {
		return a.Degraded > b.Degraded
	}
	if a.StoreFailures != b.StoreFailures {
		return a.StoreFailures > b.StoreFailures
	}
	if a.Draining != b.Draining {
		return a.Draining > b.Draining
	}
	return a.Live > b.Live
}

// Health is the manager's operator-facing health summary — what
// GET /v1/healthz reports and what a load balancer should act on. The
// top-level fields aggregate across shards (and keep their pre-sharding
// schema); Shards breaks the same counters out per shard and
// SickestShard names the shard an operator should look at first.
type Health struct {
	// OK is false while the manager is draining, any session on any
	// shard is degraded, or any shard's last store operation failed —
	// conditions under which an operator should drain traffic toward a
	// healthier replica.
	OK bool `json:"ok"`
	// Live, Parked and Degraded count sessions across all shards
	// (degraded ⊆ live).
	Live     int `json:"live"`
	Parked   int `json:"parked"`
	Degraded int `json:"degraded"`
	// Draining reports Shutdown in progress.
	Draining bool `json:"draining"`
	// StoreFailures sums store operations that exhausted the retry
	// policy since startup across shards; StoreError is the most recent
	// failing shard's error, empty when every shard's last operation
	// succeeded.
	StoreFailures uint64 `json:"store_failures"`
	StoreError    string `json:"store_error,omitempty"`
	// Shards holds the per-shard breakdown, in shard-index order.
	Shards []ShardHealth `json:"shards"`
	// SickestShard is the index of the worst-ranked shard (most
	// degraded sessions, then store failures, then backlog, then load).
	SickestShard int `json:"sickest_shard"`
	// Replicas carries per-replica checkpoint-store counters when the
	// store is a replicating persist.MultiStore (absent otherwise): a
	// replica with climbing failures is a disk to replace before a
	// second one dies.
	Replicas []persist.ReplicaStats `json:"replicas,omitempty"`
	// Wal carries the store's write-ahead-log counters when the store
	// is WAL-backed (absent otherwise): unflushed records and the last
	// group-commit batch size say how commits are batching, the fsync
	// p99 is the durability latency floor, and the compaction lag is
	// the committed-but-unfolded replay work a recovery would redo.
	// Under replication the counts are summed across replicas and the
	// p99 is the worst replica's.
	Wal *persist.WalStats `json:"wal,omitempty"`
}

// replicaStats is the optional store interface surfacing per-replica
// counters (persist.MultiStore).
type replicaStats interface {
	Stats() []persist.ReplicaStats
}

// Health reports the manager's current health across all shards.
func (m *Manager) Health() Health {
	m.mu.Lock()
	draining := m.draining
	m.mu.Unlock()
	h := Health{OK: true, Draining: draining, Shards: make([]ShardHealth, 0, len(m.shards))}
	for _, sh := range m.shards {
		s := sh.Health()
		h.Shards = append(h.Shards, s)
		h.Live += s.Live
		h.Parked += s.Parked
		h.Degraded += s.Degraded
		h.StoreFailures += s.StoreFailures
		if !s.OK {
			h.OK = false
		}
		if s.StoreError != "" {
			h.StoreError = s.StoreError
		}
		if sicker(s, h.Shards[h.SickestShard]) {
			h.SickestShard = s.Shard
		}
	}
	if draining {
		h.OK = false
	}
	if rs, ok := m.store.(replicaStats); ok {
		h.Replicas = rs.Stats()
	}
	if ws, ok := m.store.(persist.WalStatter); ok {
		if st, reported := ws.WalStats(); reported {
			h.Wal = &st
		}
	}
	return h
}
