package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"exptrain/internal/belief"
	"exptrain/internal/dataset"
	"exptrain/internal/fd"
	"exptrain/internal/persist"
	"exptrain/internal/persist/faulty"
)

// waitTicket polls a ticket until it leaves the queued state.
func waitTicket(t *testing.T, m *Manager, id, ticketID string) Ticket {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		tk, err := m.Ticket(context.Background(), id, ticketID)
		if err != nil {
			t.Fatalf("Ticket(%s, %s): %v", id, ticketID, err)
		}
		if tk.State != TicketQueued {
			return tk
		}
		if time.Now().After(deadline) {
			t.Fatalf("ticket %s still queued after 10s", ticketID)
		}
		time.Sleep(time.Millisecond)
	}
}

// abstainWindow builds label-free submissions for rounds [from, to).
func abstainWindow(from, to int) []Submission {
	subs := make([]Submission, 0, to-from)
	for r := from; r < to; r++ {
		subs = append(subs, Submission{Round: r})
	}
	return subs
}

func TestLabelpoolEnqueueLifecycle(t *testing.T) {
	m := NewManager(Options{})
	ctx := context.Background()
	info, err := m.Create(ctx, testSpec())
	if err != nil {
		t.Fatal(err)
	}

	tickets, err := m.EnqueueSubmissions(ctx, info.ID, abstainWindow(0, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(tickets) != 4 {
		t.Fatalf("got %d tickets, want 4", len(tickets))
	}
	for i, tk := range tickets {
		if tk.Round != i {
			t.Fatalf("ticket %d targets round %d", i, tk.Round)
		}
		if got := waitTicket(t, m, info.ID, tk.ID); got.State != TicketApplied {
			t.Fatalf("ticket %s: state %q error %q, want applied", tk.ID, got.State, got.Error)
		}
	}
	got, err := m.Get(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rounds != 4 {
		t.Fatalf("session played %d rounds, want 4", got.Rounds)
	}
	if n := m.QueuedSubmissions(info.ID); n != 0 {
		t.Fatalf("%d submissions still queued", n)
	}

	// An identical replay of an applied round resolves applied (the
	// idempotency contract carried into the pool).
	replay, err := m.EnqueueSubmissions(ctx, info.ID, []Submission{{Round: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTicket(t, m, info.ID, replay[0].ID); got.State != TicketApplied {
		t.Fatalf("replay ticket: state %q error %q, want applied", got.State, got.Error)
	}
	if got, _ := m.Get(ctx, info.ID); got.Rounds != 4 {
		t.Fatalf("replay advanced the session to %d rounds", got.Rounds)
	}

	if _, err := m.Ticket(ctx, info.ID, "t999"); !errors.Is(err, ErrTicketNotFound) {
		t.Fatalf("unknown ticket: %v", err)
	}
	if _, err := m.Ticket(ctx, "sess-none", "t1"); !errors.Is(err, ErrTicketNotFound) {
		t.Fatalf("unknown session's ticket: %v", err)
	}
}

func TestLabelpoolEnqueueValidation(t *testing.T) {
	m := NewManager(Options{MaxQueuedSubmissions: 3})
	ctx := context.Background()
	info, err := m.Create(ctx, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	id := info.ID

	cases := []struct {
		name string
		subs []Submission
		want error
	}{
		{"empty batch", nil, ErrBadRequest},
		{"duplicate round in batch", abstainWindow(0, 1)[0:1:1], nil}, // placeholder, replaced below
		{"row out of range", []Submission{{Round: 0, Labels: []belief.Labeling{{Pair: dataset.NewPair(0, 99)}}}}, ErrBadRequest},
		{"self pair", []Submission{{Round: 0, Labels: []belief.Labeling{{Pair: dataset.Pair{A: 3, B: 3}}}}}, ErrBadRequest},
		{"attribute out of range", []Submission{{Round: 0, Labels: []belief.Labeling{{Pair: dataset.NewPair(0, 1), Marked: fd.NewAttrSet(7)}}}}, ErrBadRequest},
		{"duplicate pair", []Submission{{Round: 0, Labels: []belief.Labeling{
			{Pair: dataset.NewPair(0, 1)}, {Pair: dataset.NewPair(0, 1), Abstained: true},
		}}}, ErrBadRequest},
		{"over capacity", abstainWindow(0, 4), ErrSubmissionBacklog},
	}
	cases[1].subs = []Submission{{Round: 1}, {Round: 1}}
	cases[1].want = ErrDuplicateRound
	for _, tc := range cases {
		if _, err := m.EnqueueSubmissions(ctx, id, tc.subs); !errors.Is(err, tc.want) {
			t.Errorf("%s: err %v, want %v", tc.name, err, tc.want)
		}
		if n := m.QueuedSubmissions(id); n != 0 {
			t.Errorf("%s: %d submissions queued after all-or-nothing rejection", tc.name, n)
		}
	}

	// A stale round that is not an identical replay fails its ticket
	// with a round-mismatch reason (admission accepts it: only the drain
	// can compare digests against the record).
	playRound(t, m, id) // round 0, fresh non-abstained labels
	stale, err := m.EnqueueSubmissions(ctx, id, abstainWindow(0, 1))
	if err != nil {
		t.Fatalf("stale enqueue: %v", err)
	}
	if got := waitTicket(t, m, id, stale[0].ID); got.State != TicketFailed || !strings.Contains(got.Error, "round") {
		t.Fatalf("stale non-replay ticket: %+v, want failed with round mismatch", got)
	}
	if _, err := m.EnqueueSubmissions(ctx, "sess-none", abstainWindow(1, 2)); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("unknown session: %v", err)
	}
}

// markPolicy deterministically labels presented pairs: mark attribute 1
// when the tuples agree on attribute 0 but differ on attribute 1 (the
// planted team→city violations of testCSV-like data), abstain every
// fifth pair.
func markPolicy(rel *dataset.Relation, pairs []PairView) []belief.Labeling {
	labeled := make([]belief.Labeling, len(pairs))
	for i, p := range pairs {
		labeled[i] = belief.Labeling{Pair: dataset.NewPair(p.A, p.B)}
		if i%5 == 4 {
			labeled[i].Abstained = true
			continue
		}
		if rel.Row(p.A)[0] == rel.Row(p.B)[0] && rel.Row(p.A)[1] != rel.Row(p.B)[1] {
			labeled[i].Marked = fd.NewAttrSet(1)
		}
	}
	return labeled
}

// roundsFingerprint pins a session's served round series bit-for-bit
// (floats rendered in hex, so no float comparison).
func roundsFingerprint(t *testing.T, m *Manager, id string) []string {
	t.Helper()
	ctx := context.Background()
	rounds, err := m.Rounds(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, rv := range rounds {
		out = append(out, fmt.Sprintf("round %d: labeled=%d revised=%d mae=%x payoff=%x",
			rv.Round, rv.Labeled, rv.Revised, rv.MAE, rv.Payoff))
	}
	hyps, err := m.TopBelief(ctx, id, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hyps {
		out = append(out, fmt.Sprintf("%s conf=%x ci=[%x,%x]", h.FD, h.Confidence, h.CILow, h.CIHigh))
	}
	return out
}

// TestLabelpoolGoldenDrainParity is the batched-drain acceptance test
// at the service level: a session driven through the labelpool (whole
// window enqueued at once, drained in batches) must be bit-identical —
// round measurements and final belief — to the same session driven
// through the sequential next/submit protocol.
func TestLabelpoolGoldenDrainParity(t *testing.T) {
	const seed, rounds = 41, 8
	ctx := context.Background()

	// Sequential reference, recording what each round was labeled.
	seqM := NewManager(Options{})
	seqInfo, err := seqM.Create(ctx, datasetSpec(seed))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := (Source{Dataset: "OMDB", Rows: 60, Seed: seed}).build()
	if err != nil {
		t.Fatal(err)
	}
	perRound := make([]Submission, 0, rounds)
	for r := 0; r < rounds; r++ {
		pairs, err := seqM.Next(ctx, seqInfo.ID)
		if err != nil {
			t.Fatal(err)
		}
		labeled := markPolicy(rel, pairs)
		if _, err := seqM.Submit(ctx, seqInfo.ID, r, labeled); err != nil {
			t.Fatal(err)
		}
		perRound = append(perRound, Submission{Round: r, Labels: labeled})
	}

	// Pool run: identical spec, the whole window in one enqueue, small
	// DrainBatch so the drain must take several lock acquisitions.
	poolM := NewManager(Options{DrainBatch: 3})
	poolInfo, err := poolM.Create(ctx, datasetSpec(seed))
	if err != nil {
		t.Fatal(err)
	}
	tickets, err := poolM.EnqueueSubmissions(ctx, poolInfo.ID, perRound)
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range tickets {
		if got := waitTicket(t, poolM, poolInfo.ID, tk.ID); got.State != TicketApplied {
			t.Fatalf("round %d ticket: state %q error %q", tk.Round, got.State, got.Error)
		}
	}

	want := roundsFingerprint(t, seqM, seqInfo.ID)
	got := roundsFingerprint(t, poolM, poolInfo.ID)
	if len(want) != len(got) {
		t.Fatalf("fingerprint length: sequential %d, pooled %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("trajectory diverges at line %d:\nsequential: %s\npooled:     %s", i, want[i], got[i])
		}
	}
}

// TestLabelpoolDrainFailureIsolation pins the failure contract: a
// submission whose labels the engine rejects fails its own ticket; the
// consecutive rounds after it stay queued and apply once the round is
// resubmitted correctly.
func TestLabelpoolDrainFailureIsolation(t *testing.T) {
	m := NewManager(Options{})
	ctx := context.Background()
	info, err := m.Create(ctx, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	id := info.ID

	// Round 0's submission duplicates a labeling (passes cheap admission
	// for distinct pairs? no — use two labelings of the same pair, which
	// admission catches; instead trip the engine with a labeling for a
	// pair that was never presented nor labeled... that becomes a
	// revision of an unlabeled pair, which the engine rejects).
	bad := []Submission{
		{Round: 0, Labels: []belief.Labeling{{Pair: dataset.NewPair(0, 1), Marked: fd.NewAttrSet(0)}, {Pair: dataset.NewPair(2, 3)}}},
		{Round: 1},
	}
	tickets, err := m.EnqueueSubmissions(ctx, id, bad)
	if err != nil {
		t.Fatal(err)
	}
	tk0 := waitTicket(t, m, id, tickets[0].ID)
	if tk0.State == TicketApplied {
		// The engine accepted it (both pairs happened to be presented);
		// nothing to isolate — skip rather than encode pool internals.
		t.Skipf("round 0 labels were all presented; cannot trip the engine with seed %d", 11)
	}
	if tk0.State != TicketFailed || tk0.Error == "" {
		t.Fatalf("round 0 ticket: %+v, want failed with a reason", tk0)
	}
	// Round 1 stays queued behind the gap.
	if n := m.QueuedSubmissions(id); n != 1 {
		t.Fatalf("%d queued, want 1 (round 1 waiting)", n)
	}
	tk1, err := m.Ticket(ctx, id, tickets[1].ID)
	if err != nil || tk1.State != TicketQueued {
		t.Fatalf("round 1 ticket: %+v err %v", tk1, err)
	}

	// Resubmitting round 0 (abstain-all is always valid) unblocks it.
	fixed, err := m.EnqueueSubmissions(ctx, id, []Submission{{Round: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTicket(t, m, id, fixed[0].ID); got.State != TicketApplied {
		t.Fatalf("fixed round 0: %+v", got)
	}
	if got := waitTicket(t, m, id, tickets[1].ID); got.State != TicketApplied {
		t.Fatalf("queued round 1 after fix: %+v", got)
	}
}

// TestLabelpoolShutdownFlush: Shutdown must apply every ticketed
// submission before checkpointing — the snapshot taken on drain
// carries the queued rounds.
func TestLabelpoolShutdownFlush(t *testing.T) {
	m := NewManager(Options{})
	ctx := context.Background()
	info, err := m.Create(ctx, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	// testCSV sessions exhaust their candidate pool after 4 rounds at
	// K=3; queue exactly that window.
	tickets, err := m.EnqueueSubmissions(ctx, info.ID, abstainWindow(0, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	for _, tk := range tickets {
		got, err := m.Ticket(ctx, info.ID, tk.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State != TicketApplied {
			t.Fatalf("after shutdown, ticket for round %d is %q (%s)", tk.Round, got.State, got.Error)
		}
	}
	snap, err := m.Store().Get(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.History) != 4 {
		t.Fatalf("snapshot has %d rounds, want 4 — a ticketed submission was dropped", len(snap.History))
	}
	// New enqueues are rejected while drained.
	if _, err := m.EnqueueSubmissions(ctx, info.ID, abstainWindow(4, 5)); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("enqueue after shutdown: %v", err)
	}
}

// TestLabelpoolCheckpointEvery: with CheckpointEvery set, the drain
// checkpoints mid-stream, so even a kill without Shutdown loses at
// most CheckpointEvery-1 rounds.
func TestLabelpoolCheckpointEvery(t *testing.T) {
	m := NewManager(Options{CheckpointEvery: 2, DrainBatch: 2})
	ctx := context.Background()
	info, err := m.Create(ctx, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	tickets, err := m.EnqueueSubmissions(ctx, info.ID, abstainWindow(0, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range tickets {
		waitTicket(t, m, info.ID, tk.ID)
	}
	snap, err := m.Store().Get(ctx, info.ID)
	if err != nil {
		t.Fatalf("no checkpoint despite CheckpointEvery: %v", err)
	}
	if len(snap.History) < 2 {
		t.Fatalf("checkpoint carries %d rounds, want at least one CheckpointEvery batch", len(snap.History))
	}
}

// TestLabelpoolChaosZeroLoss is the acceptance chaos test for the
// batched path: 64 sessions submitting through the labelpool while a
// seeded-flaky store forces park/unpark churn through 16 resident
// slots. After the faults clear and the manager drains, every ticketed
// round must be in its session's snapshot — zero submitted rounds
// lost. Run under -race via make chaos.
func TestLabelpoolChaosZeroLoss(t *testing.T) {
	const workers, rounds, window = 64, 4, 2
	const chaosSeed = 77
	ctx := context.Background()
	fs := faulty.Wrap(persist.NewMemStore(), faulty.Config{Seed: chaosSeed, FailRate: 0.2})
	m := NewManager(Options{
		MaxSessions:     16,
		IdleTTL:         time.Minute,
		Store:           fs,
		Retry:           fastRetry(),
		RetrySeed:       chaosSeed,
		DrainBatch:      window,
		CheckpointEvery: 4,
	})

	transient := func(err error) bool {
		return errors.Is(err, ErrStoreUnavailable) || errors.Is(err, ErrTooManySessions)
	}
	retry := func(op func() error) error {
		for tries := 0; ; tries++ {
			err := op()
			if err == nil || !transient(err) || tries > 5000 {
				return err
			}
			time.Sleep(200 * time.Microsecond)
		}
	}

	ids := make([]string, workers)
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var info Info
			if err := retry(func() (err error) {
				info, err = m.Create(ctx, testSpec())
				return err
			}); err != nil {
				errCh <- fmt.Errorf("worker %d create: %w", w, err)
				return
			}
			ids[w] = info.ID
			for base := 0; base < rounds; base += window {
				var tickets []Ticket
				if err := retry(func() (err error) {
					tickets, err = m.EnqueueSubmissions(ctx, info.ID, abstainWindow(base, base+window))
					return err
				}); err != nil {
					errCh <- fmt.Errorf("worker %d window %d enqueue: %w", w, base, err)
					return
				}
				for _, tk := range tickets {
					deadline := time.Now().Add(30 * time.Second)
					for {
						got, err := m.Ticket(ctx, info.ID, tk.ID)
						if err != nil {
							errCh <- fmt.Errorf("worker %d ticket %s: %w", w, tk.ID, err)
							return
						}
						if got.State == TicketApplied {
							break
						}
						if got.State == TicketFailed {
							errCh <- fmt.Errorf("worker %d round %d failed: %s", w, got.Round, got.Error)
							return
						}
						if time.Now().After(deadline) {
							errCh <- fmt.Errorf("worker %d round %d stuck queued", w, got.Round)
							return
						}
						time.Sleep(200 * time.Microsecond)
					}
				}
				// A third of the workers force eviction churn between
				// windows; failure just leaves the session degraded.
				if w%3 == 0 {
					_ = m.Evict(ctx, info.ID)
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	if ops, injected := fs.Stats(); injected == 0 {
		t.Fatalf("no faults injected over %d store ops (seed %d)", ops, fs.Seed())
	}
	fs.ClearFaults()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown after faults cleared: %v", err)
	}
	for w, id := range ids {
		snap, err := fs.Get(ctx, id)
		if err != nil {
			t.Fatalf("worker %d: snapshot %s unreadable: %v", w, id, err)
		}
		if got := len(snap.History); got != rounds {
			t.Fatalf("worker %d: snapshot has %d rounds, want %d — a ticketed round was lost", w, got, rounds)
		}
	}
}
