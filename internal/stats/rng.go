// Package stats provides the probabilistic primitives used across the
// exploratory-training framework: deterministic random number generation,
// Beta distributions for belief modeling, entropy measures, softmax
// response distributions, and numerically careful aggregation.
//
// Every source of randomness in the repository flows through an *RNG so
// that experiments are reproducible bit-for-bit for a fixed seed.
package stats

import (
	"fmt"
	"math"
)

// RNG is a deterministic pseudo-random number generator based on the
// splitmix64 / xoshiro256** family. It is intentionally self-contained
// (no math/rand) so that sequences are stable across Go releases, which
// keeps the benchmark harness reproducible.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from the given seed via splitmix64,
// as recommended by the xoshiro authors.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// A freshly seeded state of all zeros is invalid; splitmix64 cannot
	// produce it for any seed, but guard regardless.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split derives an independent generator from r. The derived stream is
// decorrelated from r's future output, which lets one master seed fan out
// to per-component generators (one per agent, per sampler, per run).
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa0761d6478bd642f)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	res := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return res
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo*bHi + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aHi * bLo
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// [0, n). It panics if k > n or k < 0. The result is in random order.
func (r *RNG) SampleWithoutReplacement(n, k int) []int {
	if k < 0 || k > n {
		panic("stats: SampleWithoutReplacement with k out of range")
	}
	if k == 0 {
		return nil
	}
	// Floyd's algorithm: O(k) memory, no O(n) allocation. Membership is
	// a linear scan of the draws so far — k is small everywhere this is
	// called (pair budgets, pool sub-sampling caps), and dropping the
	// map halves the allocation count of the sampler hot path. The RNG
	// consumption and results are identical to the map-based form.
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		for _, v := range out {
			if v == t {
				t = j
				break
			}
		}
		out = append(out, t)
	}
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// State exposes the generator's xoshiro256** state words so a
// checkpoint can capture the exact position in the stream.
func (r *RNG) State() [4]uint64 { return r.s }

// RestoreState resumes the generator at a previously captured State, so
// the restored stream continues bit-for-bit where the captured one
// stopped. The all-zero state is xoshiro's single invalid fixed point
// and is rejected.
func (r *RNG) RestoreState(s [4]uint64) error {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return fmt.Errorf("stats: all-zero RNG state is invalid")
	}
	r.s = s
	return nil
}
