package stats

import "math"

// BernoulliEntropy returns the entropy (in nats) of a Bernoulli(p)
// variable: −p·ln(p) − (1−p)·ln(1−p). This is the uncertainty measure
// the paper uses for both Uncertainty Sampling and Stochastic Uncertainty
// Sampling (§C.1). Degenerate p (0 or 1) yields 0 by the usual
// 0·ln 0 = 0 convention; p outside [0,1] is clamped, which protects the
// samplers from tiny floating-point excursions in belief means.
func BernoulliEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log(p) - (1-p)*math.Log(1-p)
}

// Entropy returns the Shannon entropy (nats) of the distribution p,
// which need not be normalized exactly; non-positive entries contribute
// zero. This is the exploration term −Σ π(x)·ln π(x) of the learner's
// payoff u_L in Section 2.
func Entropy(p []float64) float64 {
	var h float64
	for _, pi := range p {
		if pi > 0 {
			h -= pi * math.Log(pi)
		}
	}
	return h
}

// Softmax writes into dst the distribution proportional to
// exp(score[i]/gamma), the stochastic best-response form of Section 4:
//
//	π(x) = exp(u(x)/γ) / Σ_x' exp(u(x')/γ)
//
// It is computed with the max-subtraction trick so that large scores and
// small γ do not overflow. gamma must be positive. dst and scores may
// alias. If all scores are −Inf the result is uniform.
func Softmax(dst, scores []float64, gamma float64) {
	if gamma <= 0 {
		panic("stats: Softmax with non-positive gamma")
	}
	if len(dst) != len(scores) {
		panic("stats: Softmax length mismatch")
	}
	if len(scores) == 0 {
		return
	}
	maxS := math.Inf(-1)
	for _, s := range scores {
		if s > maxS {
			maxS = s
		}
	}
	if math.IsInf(maxS, -1) {
		u := 1 / float64(len(dst))
		for i := range dst {
			dst[i] = u
		}
		return
	}
	var sum float64
	for i, s := range scores {
		e := math.Exp((s - maxS) / gamma)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
}

// SampleCategorical draws an index from the (normalized) distribution p.
// A final fallback to the last positive-probability index protects
// against the cumulative sum landing a hair under 1.
func SampleCategorical(r *RNG, p []float64) int {
	u := r.Float64()
	var c float64
	last := -1
	for i, pi := range p {
		if pi <= 0 {
			continue
		}
		last = i
		c += pi
		if u < c {
			return i
		}
	}
	if last < 0 {
		panic("stats: SampleCategorical over empty or zero distribution")
	}
	return last
}

// Normalize scales p in place to sum to 1. If the sum is not positive it
// sets the uniform distribution. It returns the original sum.
func Normalize(p []float64) float64 {
	var sum float64
	for _, v := range p {
		if v > 0 {
			sum += v
		}
	}
	if sum <= 0 {
		if len(p) > 0 {
			u := 1 / float64(len(p))
			for i := range p {
				p[i] = u
			}
		}
		return sum
	}
	for i, v := range p {
		if v > 0 {
			p[i] = v / sum
		} else {
			p[i] = 0
		}
	}
	return sum
}
