package stats

import (
	"fmt"
	"math"
)

// Beta is a Beta(α, β) distribution over [0, 1]. It is the conjugate
// prior the framework uses for per-hypothesis confidence: observing a
// tuple pair that complies with a functional dependency increments α,
// observing a violating pair increments β (fictitious play's empirical
// frequency counting is exactly this update, which is why the paper uses
// "FP" and "Bayesian" interchangeably).
type Beta struct {
	Alpha float64
	Beta  float64
}

// NewBeta returns a Beta distribution with the given shape parameters.
// It panics if either parameter is not strictly positive.
func NewBeta(alpha, beta float64) Beta {
	if !(alpha > 0) || !(beta > 0) {
		panic(fmt.Sprintf("stats: invalid Beta parameters α=%v β=%v", alpha, beta))
	}
	return Beta{Alpha: alpha, Beta: beta}
}

// BetaFromMoments constructs the Beta distribution with the given mean μ
// and standard deviation σ, inverting
//
//	μ = α/(α+β)
//	σ² = αβ / ((α+β)²(α+β+1))
//
// which is how the paper configures user-study priors (§A.2: μ=0.85 for
// the user-specified FD, 0.15 or 0.8 for the others, σ=0.05 for all).
// It returns an error when (μ, σ) lie outside the feasible region
// σ² < μ(1-μ).
func BetaFromMoments(mu, sigma float64) (Beta, error) {
	if mu <= 0 || mu >= 1 {
		return Beta{}, fmt.Errorf("stats: Beta mean %v out of (0,1)", mu)
	}
	v := sigma * sigma
	if v <= 0 {
		return Beta{}, fmt.Errorf("stats: Beta variance must be positive, got σ=%v", sigma)
	}
	if v >= mu*(1-mu) {
		return Beta{}, fmt.Errorf("stats: infeasible Beta moments μ=%v σ=%v (need σ² < μ(1-μ))", mu, sigma)
	}
	nu := mu*(1-mu)/v - 1 // ν = α+β
	return NewBeta(mu*nu, (1-mu)*nu), nil
}

// MustBetaFromMoments is BetaFromMoments that panics on error; intended
// for statically known-feasible configurations.
func MustBetaFromMoments(mu, sigma float64) Beta {
	b, err := BetaFromMoments(mu, sigma)
	if err != nil {
		panic(err)
	}
	return b
}

// Mean returns α/(α+β).
func (b Beta) Mean() float64 { return b.Alpha / (b.Alpha + b.Beta) }

// Variance returns αβ/((α+β)²(α+β+1)).
func (b Beta) Variance() float64 {
	s := b.Alpha + b.Beta
	return b.Alpha * b.Beta / (s * s * (s + 1))
}

// StdDev returns the standard deviation.
func (b Beta) StdDev() float64 { return math.Sqrt(b.Variance()) }

// Mode returns the mode for α,β > 1; for other shapes it falls back to
// the mean, which is what the belief code wants as a point estimate.
func (b Beta) Mode() float64 {
	if b.Alpha > 1 && b.Beta > 1 {
		return (b.Alpha - 1) / (b.Alpha + b.Beta - 2)
	}
	return b.Mean()
}

// Observe returns the posterior after seeing `successes` compliant and
// `failures` violating observations (standard conjugate update).
func (b Beta) Observe(successes, failures float64) Beta {
	if successes < 0 || failures < 0 {
		panic("stats: negative observation counts")
	}
	return Beta{Alpha: b.Alpha + successes, Beta: b.Beta + failures}
}

// LogPDF returns the log density at x ∈ (0, 1).
func (b Beta) LogPDF(x float64) float64 {
	if x <= 0 || x >= 1 {
		return math.Inf(-1)
	}
	return (b.Alpha-1)*math.Log(x) + (b.Beta-1)*math.Log(1-x) - logBetaFunc(b.Alpha, b.Beta)
}

// PDF returns the density at x.
func (b Beta) PDF(x float64) float64 { return math.Exp(b.LogPDF(x)) }

// Sample draws a variate using the ratio of two Gamma draws.
func (b Beta) Sample(r *RNG) float64 {
	x := sampleGamma(r, b.Alpha)
	y := sampleGamma(r, b.Beta)
	if x == 0 && y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// logBetaFunc computes log B(a, b) = lnΓ(a) + lnΓ(b) − lnΓ(a+b).
func logBetaFunc(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// sampleGamma draws from Gamma(shape, 1) using Marsaglia & Tsang (2000),
// with the standard boost for shape < 1.
func sampleGamma(r *RNG, shape float64) float64 {
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a)
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return sampleGamma(r, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u == 0 {
			continue
		}
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
