package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSumKahanBeatsNaive(t *testing.T) {
	// A classic compensated-summation case: many tiny values plus one
	// large one.
	xs := make([]float64, 0, 10001)
	xs = append(xs, 1e16)
	for i := 0; i < 10000; i++ {
		xs = append(xs, 1.0)
	}
	got := Sum(xs)
	want := 1e16 + 10000
	if got != want {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
}

func TestMeanVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	// Sample variance with n−1 = 7 denominator: 32/7.
	if got, want := Variance(xs), 32.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Fatalf("Variance(single) = %v", got)
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.xs); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Median mutated input: %v", xs)
	}
}

func TestMeanAbsDiff(t *testing.T) {
	a := []float64{0, 1, 0.5}
	b := []float64{1, 1, 0.25}
	if got, want := MeanAbsDiff(a, b), (1+0+0.25)/3; math.Abs(got-want) > 1e-12 {
		t.Fatalf("MeanAbsDiff = %v, want %v", got, want)
	}
}

func TestMeanAbsDiffProperties(t *testing.T) {
	f := func(raw []float64) bool {
		a := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			a[i] = math.Mod(v, 10)
		}
		// Identity: d(a,a) = 0. Symmetry: d(a,b) = d(b,a).
		if MeanAbsDiff(a, a) != 0 {
			return false
		}
		if len(a) == 0 {
			return true
		}
		b := make([]float64, len(a))
		for i := range b {
			b[i] = a[i] + 1
		}
		return math.Abs(MeanAbsDiff(a, b)-1) < 1e-9 &&
			MeanAbsDiff(a, b) == MeanAbsDiff(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanAbsDiffPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	MeanAbsDiff([]float64{1}, []float64{1, 2})
}

func TestAverageSeries(t *testing.T) {
	runs := []Series{
		{1, 2, 3},
		{3, 4, 5},
	}
	avg := AverageSeries(runs)
	want := Series{2, 3, 4}
	for i := range want {
		if avg[i] != want[i] {
			t.Fatalf("AverageSeries = %v, want %v", avg, want)
		}
	}
}

func TestAverageSeriesRagged(t *testing.T) {
	runs := []Series{
		{1, 2, 3, 10},
		{3, 4},
	}
	avg := AverageSeries(runs)
	want := Series{2, 3, 3, 10}
	if len(avg) != 4 {
		t.Fatalf("ragged average length = %d, want 4", len(avg))
	}
	for i := range want {
		if avg[i] != want[i] {
			t.Fatalf("ragged AverageSeries = %v, want %v", avg, want)
		}
	}
}

func TestAverageSeriesEmpty(t *testing.T) {
	if got := AverageSeries(nil); len(got) != 0 {
		t.Fatalf("AverageSeries(nil) = %v", got)
	}
}

func TestStdDevMatchesVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got, want := StdDev(xs), math.Sqrt(Variance(xs)); got != want {
		t.Fatalf("StdDev = %v, want %v", got, want)
	}
}
