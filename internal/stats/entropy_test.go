package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBernoulliEntropy(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0, 0},
		{1, 0},
		{0.5, math.Ln2},
		{-0.1, 0}, // clamped
		{1.1, 0},  // clamped
	}
	for _, c := range cases {
		if got := BernoulliEntropy(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("BernoulliEntropy(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestBernoulliEntropySymmetricAndPeaked(t *testing.T) {
	f := func(pRaw uint16) bool {
		p := float64(pRaw) / 65535
		h := BernoulliEntropy(p)
		// Symmetry and maximality at 1/2.
		return math.Abs(h-BernoulliEntropy(1-p)) < 1e-12 && h <= math.Ln2+1e-12 && h >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEntropyUniformIsLogN(t *testing.T) {
	for _, n := range []int{2, 4, 10, 100} {
		p := make([]float64, n)
		for i := range p {
			p[i] = 1 / float64(n)
		}
		if got, want := Entropy(p), math.Log(float64(n)); math.Abs(got-want) > 1e-9 {
			t.Errorf("Entropy(uniform %d) = %v, want %v", n, got, want)
		}
	}
}

func TestEntropyDegenerate(t *testing.T) {
	if got := Entropy([]float64{1, 0, 0}); got != 0 {
		t.Fatalf("Entropy(point mass) = %v, want 0", got)
	}
	if got := Entropy(nil); got != 0 {
		t.Fatalf("Entropy(nil) = %v, want 0", got)
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	f := func(raw []float64, gRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		scores := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			scores[i] = math.Mod(v, 100)
		}
		gamma := 0.05 + float64(gRaw)/64
		dst := make([]float64, len(scores))
		Softmax(dst, scores, gamma)
		var sum float64
		for _, p := range dst {
			if p < 0 || p > 1 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxOrderPreserving(t *testing.T) {
	scores := []float64{1, 3, 2}
	dst := make([]float64, 3)
	Softmax(dst, scores, 0.5)
	if !(dst[1] > dst[2] && dst[2] > dst[0]) {
		t.Fatalf("softmax not order preserving: %v", dst)
	}
}

func TestSoftmaxGammaLimits(t *testing.T) {
	scores := []float64{0, 1}
	// Small gamma → nearly deterministic argmax (approximates pure
	// uncertainty sampling per Section 4).
	cold := make([]float64, 2)
	Softmax(cold, scores, 0.01)
	if cold[1] < 0.999 {
		t.Fatalf("γ→0 should concentrate on argmax, got %v", cold)
	}
	// Large gamma → nearly uniform.
	hot := make([]float64, 2)
	Softmax(hot, scores, 1000)
	if math.Abs(hot[0]-0.5) > 0.01 {
		t.Fatalf("γ→∞ should approach uniform, got %v", hot)
	}
}

func TestSoftmaxLargeScoresNoOverflow(t *testing.T) {
	scores := []float64{1e6, 1e6 + 1, 1e6 - 3}
	dst := make([]float64, 3)
	Softmax(dst, scores, 0.5)
	var sum float64
	for _, p := range dst {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("overflow in softmax: %v", dst)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("softmax sum = %v", sum)
	}
}

func TestSoftmaxAllNegInfUniform(t *testing.T) {
	scores := []float64{math.Inf(-1), math.Inf(-1)}
	dst := make([]float64, 2)
	Softmax(dst, scores, 1)
	if dst[0] != 0.5 || dst[1] != 0.5 {
		t.Fatalf("all -Inf should yield uniform, got %v", dst)
	}
}

func TestSoftmaxPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero gamma":      func() { Softmax(make([]float64, 1), []float64{1}, 0) },
		"length mismatch": func() { Softmax(make([]float64, 2), []float64{1}, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSampleCategoricalFrequencies(t *testing.T) {
	r := NewRNG(77)
	p := []float64{0.1, 0.2, 0.7}
	const n = 100000
	counts := make([]int, 3)
	for i := 0; i < n; i++ {
		counts[SampleCategorical(r, p)]++
	}
	for i, pi := range p {
		got := float64(counts[i]) / n
		if math.Abs(got-pi) > 0.01 {
			t.Errorf("category %d frequency %v, want %v", i, got, pi)
		}
	}
}

func TestSampleCategoricalSkipsZeros(t *testing.T) {
	r := NewRNG(79)
	p := []float64{0, 1, 0}
	for i := 0; i < 100; i++ {
		if SampleCategorical(r, p) != 1 {
			t.Fatal("sampled a zero-probability category")
		}
	}
}

func TestSampleCategoricalPanicsOnZeroDist(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero distribution did not panic")
		}
	}()
	SampleCategorical(NewRNG(1), []float64{0, 0})
}

func TestNormalize(t *testing.T) {
	p := []float64{2, 6, 2}
	Normalize(p)
	want := []float64{0.2, 0.6, 0.2}
	for i := range p {
		if math.Abs(p[i]-want[i]) > 1e-12 {
			t.Fatalf("Normalize = %v, want %v", p, want)
		}
	}
}

func TestNormalizeZeroFallsBackToUniform(t *testing.T) {
	p := []float64{0, 0, 0, 0}
	Normalize(p)
	for _, v := range p {
		if v != 0.25 {
			t.Fatalf("zero-sum Normalize = %v, want uniform", p)
		}
	}
}

func TestNormalizeNegativeEntriesZeroed(t *testing.T) {
	p := []float64{-1, 1, 1}
	Normalize(p)
	if p[0] != 0 || math.Abs(p[1]-0.5) > 1e-12 {
		t.Fatalf("negative entries not handled: %v", p)
	}
}
