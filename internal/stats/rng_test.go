package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("iteration %d: same seed diverged: %d vs %d", i, x, y)
		}
	}
}

func TestNewRNGDifferentSeedsDiverge(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("different seeds produced %d/64 identical outputs", same)
	}
}

func TestSplitDecorrelated(t *testing.T) {
	a := NewRNG(7)
	b := a.Split()
	// The split stream must not simply replay the parent stream.
	parent := make([]uint64, 32)
	for i := range parent {
		parent[i] = a.Uint64()
	}
	matches := 0
	for i := 0; i < 32; i++ {
		v := b.Uint64()
		for _, p := range parent {
			if v == p {
				matches++
			}
		}
	}
	if matches > 0 {
		t.Fatalf("split stream shares %d values with parent", matches)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ≈0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	for n := 1; n <= 17; n++ {
		seen := make([]bool, n)
		for i := 0; i < 2000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
			seen[v] = true
		}
		for v, ok := range seen {
			if !ok {
				t.Fatalf("Intn(%d) never produced %d in 2000 draws", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(9)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("Intn(%d): value %d drawn %d times, want ≈%v", n, v, c, want)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ≈1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(17)
	for n := 0; n <= 20; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleWithoutReplacementProperties(t *testing.T) {
	r := NewRNG(19)
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%50) + 1
		k := int(kRaw) % (n + 1)
		s := r.SampleWithoutReplacement(n, k)
		if len(s) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleWithoutReplacementFullSet(t *testing.T) {
	r := NewRNG(23)
	s := r.SampleWithoutReplacement(8, 8)
	seen := make([]bool, 8)
	for _, v := range s {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("k=n sample missing element %d: %v", i, s)
		}
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k > n did not panic")
		}
	}()
	NewRNG(1).SampleWithoutReplacement(3, 4)
}

func TestSampleWithoutReplacementUniform(t *testing.T) {
	// Every element should be included with probability k/n.
	r := NewRNG(29)
	const n, k, trials = 10, 3, 50000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		for _, v := range r.SampleWithoutReplacement(n, k) {
			counts[v]++
		}
	}
	want := float64(trials) * k / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("element %d included %d times, want ≈%v", v, c, want)
		}
	}
}

func TestShuffle(t *testing.T) {
	r := NewRNG(31)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("shuffle lost element %d: %v", i, xs)
		}
	}
}
