package stats

import "math"

// CDF returns P(X ≤ x) for X ~ Beta(α, β): the regularized incomplete
// beta function I_x(α, β), computed with the continued-fraction
// expansion (Lentz's method, as in Numerical Recipes §6.4). Accurate to
// ~1e-12 over the parameter ranges beliefs use.
func (b Beta) CDF(x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	// Symmetry: converge fast by evaluating on the side where the
	// continued fraction is stable.
	lbeta := logBetaFunc(b.Alpha, b.Beta)
	front := math.Exp(b.Alpha*math.Log(x) + b.Beta*math.Log(1-x) - lbeta)
	if x < (b.Alpha+1)/(b.Alpha+b.Beta+2) {
		return front * betacf(b.Alpha, b.Beta, x) / b.Alpha
	}
	return 1 - front*betacf(b.Beta, b.Alpha, 1-x)/b.Beta
}

// betacf evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 1e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		mf := float64(m)
		aa := mf * (b - mf) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + mf) * (qab + mf) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// Quantile returns the p-quantile of the Beta distribution (the inverse
// CDF), found by bisection on the monotone CDF. p outside [0, 1]
// panics.
func (b Beta) Quantile(p float64) float64 {
	if p < 0 || p > 1 {
		panic("stats: Beta quantile probability out of [0,1]")
	}
	if p == 0 {
		return 0
	}
	if p == 1 {
		return 1
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if b.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-13 {
			break
		}
	}
	return (lo + hi) / 2
}

// CredibleInterval returns the central credible interval covering the
// given mass (e.g. 0.95): the (1−mass)/2 and 1−(1−mass)/2 quantiles.
func (b Beta) CredibleInterval(mass float64) (lo, hi float64) {
	if mass <= 0 || mass >= 1 {
		panic("stats: credible mass out of (0,1)")
	}
	tail := (1 - mass) / 2
	return b.Quantile(tail), b.Quantile(1 - tail)
}
