package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBetaCDFKnownValues(t *testing.T) {
	cases := []struct {
		alpha, beta, x, want float64
	}{
		// Beta(1,1) is uniform: CDF(x) = x.
		{1, 1, 0.3, 0.3},
		{1, 1, 0.85, 0.85},
		// Beta(2,1): CDF(x) = x².
		{2, 1, 0.5, 0.25},
		{2, 1, 0.9, 0.81},
		// Beta(1,2): CDF(x) = 1 − (1−x)² = 2x − x².
		{1, 2, 0.5, 0.75},
		// Beta(2,2): CDF(x) = 3x² − 2x³.
		{2, 2, 0.5, 0.5},
		{2, 2, 0.25, 3*0.0625 - 2*0.015625},
		// Symmetric distribution: CDF at the mean is 1/2.
		{7, 7, 0.5, 0.5},
	}
	for _, c := range cases {
		b := NewBeta(c.alpha, c.beta)
		if got := b.CDF(c.x); math.Abs(got-c.want) > 1e-10 {
			t.Errorf("Beta(%v,%v).CDF(%v) = %v, want %v", c.alpha, c.beta, c.x, got, c.want)
		}
	}
}

func TestBetaCDFBoundaries(t *testing.T) {
	b := NewBeta(3, 4)
	if b.CDF(0) != 0 || b.CDF(-1) != 0 {
		t.Error("CDF below support should be 0")
	}
	if b.CDF(1) != 1 || b.CDF(2) != 1 {
		t.Error("CDF above support should be 1")
	}
}

func TestBetaCDFMonotoneProperty(t *testing.T) {
	f := func(aRaw, bRaw, xRaw, yRaw uint16) bool {
		alpha := 0.2 + float64(aRaw%400)/10
		beta := 0.2 + float64(bRaw%400)/10
		x := float64(xRaw) / 65535
		y := float64(yRaw) / 65535
		if x > y {
			x, y = y, x
		}
		b := NewBeta(alpha, beta)
		cx, cy := b.CDF(x), b.CDF(y)
		return cx >= -1e-12 && cy <= 1+1e-12 && cx <= cy+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestBetaCDFMatchesSampling(t *testing.T) {
	rng := NewRNG(4242)
	b := NewBeta(3.5, 1.7)
	const n = 200000
	count := 0
	const x = 0.6
	for i := 0; i < n; i++ {
		if b.Sample(rng) <= x {
			count++
		}
	}
	empirical := float64(count) / n
	if got := b.CDF(x); math.Abs(got-empirical) > 0.005 {
		t.Fatalf("CDF(%v) = %v, sampling says %v", x, got, empirical)
	}
}

func TestBetaQuantileInvertsCDF(t *testing.T) {
	f := func(aRaw, bRaw, pRaw uint16) bool {
		alpha := 0.3 + float64(aRaw%300)/10
		beta := 0.3 + float64(bRaw%300)/10
		p := 0.001 + 0.998*float64(pRaw)/65535
		b := NewBeta(alpha, beta)
		x := b.Quantile(p)
		return math.Abs(b.CDF(x)-p) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBetaQuantileBoundariesAndPanic(t *testing.T) {
	b := NewBeta(2, 3)
	if b.Quantile(0) != 0 || b.Quantile(1) != 1 {
		t.Error("boundary quantiles wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range p did not panic")
		}
	}()
	b.Quantile(1.5)
}

func TestCredibleInterval(t *testing.T) {
	// Uniform: the central 90% interval is [0.05, 0.95].
	u := NewBeta(1, 1)
	lo, hi := u.CredibleInterval(0.9)
	if math.Abs(lo-0.05) > 1e-9 || math.Abs(hi-0.95) > 1e-9 {
		t.Fatalf("uniform 90%% CI = [%v, %v]", lo, hi)
	}
	// A tight posterior has a narrow interval containing the mean.
	tight := NewBeta(500, 500)
	lo, hi = tight.CredibleInterval(0.95)
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("interval [%v, %v] must straddle the mean", lo, hi)
	}
	if hi-lo > 0.1 {
		t.Fatalf("tight posterior has wide interval [%v, %v]", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid mass did not panic")
		}
	}()
	tight.CredibleInterval(1)
}
