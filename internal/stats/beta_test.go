package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBetaMeanVariance(t *testing.T) {
	cases := []struct {
		alpha, beta, mean, variance float64
	}{
		{1, 1, 0.5, 1.0 / 12},
		{2, 2, 0.5, 0.05},
		{9, 1, 0.9, 9.0 / (100 * 11)},
		{0.5, 0.5, 0.5, 0.125},
	}
	for _, c := range cases {
		b := NewBeta(c.alpha, c.beta)
		if got := b.Mean(); math.Abs(got-c.mean) > 1e-12 {
			t.Errorf("Beta(%v,%v).Mean() = %v, want %v", c.alpha, c.beta, got, c.mean)
		}
		if got := b.Variance(); math.Abs(got-c.variance) > 1e-12 {
			t.Errorf("Beta(%v,%v).Variance() = %v, want %v", c.alpha, c.beta, got, c.variance)
		}
	}
}

func TestNewBetaPanicsOnInvalid(t *testing.T) {
	for _, c := range [][2]float64{{0, 1}, {1, 0}, {-1, 1}, {math.NaN(), 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBeta(%v, %v) did not panic", c[0], c[1])
				}
			}()
			NewBeta(c[0], c[1])
		}()
	}
}

func TestBetaFromMomentsRoundTrip(t *testing.T) {
	f := func(muRaw, sigmaRaw uint16) bool {
		mu := 0.01 + 0.98*float64(muRaw)/65535
		maxSigma := math.Sqrt(mu * (1 - mu))
		sigma := 0.001 + 0.9*maxSigma*float64(sigmaRaw)/65535
		b, err := BetaFromMoments(mu, sigma)
		if err != nil {
			return false
		}
		return math.Abs(b.Mean()-mu) < 1e-9 && math.Abs(b.StdDev()-sigma) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBetaFromMomentsPaperPriors(t *testing.T) {
	// §A.2 prior configuration: means 0.85 / 0.15 / 0.8, σ = 0.05.
	for _, mu := range []float64{0.85, 0.15, 0.8} {
		b, err := BetaFromMoments(mu, 0.05)
		if err != nil {
			t.Fatalf("paper prior μ=%v infeasible: %v", mu, err)
		}
		if math.Abs(b.Mean()-mu) > 1e-9 {
			t.Errorf("μ=%v: got mean %v", mu, b.Mean())
		}
		if math.Abs(b.StdDev()-0.05) > 1e-9 {
			t.Errorf("μ=%v: got σ %v", mu, b.StdDev())
		}
	}
}

func TestBetaFromMomentsInfeasible(t *testing.T) {
	cases := []struct{ mu, sigma float64 }{
		{0.5, 0.5},  // σ² = 0.25 = μ(1-μ)
		{0.5, 0.6},  // σ² > μ(1-μ)
		{0, 0.05},   // mean at boundary
		{1, 0.05},   // mean at boundary
		{0.5, 0},    // zero variance
		{-0.1, 0.1}, // mean below range
	}
	for _, c := range cases {
		if _, err := BetaFromMoments(c.mu, c.sigma); err == nil {
			t.Errorf("BetaFromMoments(%v, %v) should error", c.mu, c.sigma)
		}
	}
}

func TestBetaObserve(t *testing.T) {
	b := NewBeta(1, 1).Observe(3, 2)
	if b.Alpha != 4 || b.Beta != 3 {
		t.Fatalf("Observe: got Beta(%v,%v), want Beta(4,3)", b.Alpha, b.Beta)
	}
	// Posterior mean moves toward the empirical rate as evidence grows.
	strong := NewBeta(1, 1).Observe(300, 100)
	if math.Abs(strong.Mean()-0.75) > 0.01 {
		t.Fatalf("posterior mean = %v, want ≈0.75", strong.Mean())
	}
}

func TestBetaObservePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative observation did not panic")
		}
	}()
	NewBeta(1, 1).Observe(-1, 0)
}

func TestBetaPDFIntegratesToOne(t *testing.T) {
	for _, b := range []Beta{NewBeta(2, 5), NewBeta(1, 1), NewBeta(8, 2)} {
		const n = 20000
		var integral float64
		for i := 0; i < n; i++ {
			x := (float64(i) + 0.5) / n
			integral += b.PDF(x) / n
		}
		if math.Abs(integral-1) > 0.01 {
			t.Errorf("Beta(%v,%v) PDF integrates to %v", b.Alpha, b.Beta, integral)
		}
	}
}

func TestBetaPDFOutsideSupport(t *testing.T) {
	b := NewBeta(2, 3)
	for _, x := range []float64{-0.5, 0, 1, 1.5} {
		if got := b.PDF(x); got != 0 {
			t.Errorf("PDF(%v) = %v, want 0", x, got)
		}
	}
}

func TestBetaSampleMoments(t *testing.T) {
	r := NewRNG(101)
	for _, b := range []Beta{NewBeta(2, 5), NewBeta(0.5, 0.5), NewBeta(10, 1)} {
		const n = 100000
		var sum, sumsq float64
		for i := 0; i < n; i++ {
			x := b.Sample(r)
			if x < 0 || x > 1 {
				t.Fatalf("Beta(%v,%v) sample out of [0,1]: %v", b.Alpha, b.Beta, x)
			}
			sum += x
			sumsq += x * x
		}
		mean := sum / n
		variance := sumsq/n - mean*mean
		if math.Abs(mean-b.Mean()) > 0.01 {
			t.Errorf("Beta(%v,%v) sample mean %v, want %v", b.Alpha, b.Beta, mean, b.Mean())
		}
		if math.Abs(variance-b.Variance()) > 0.01 {
			t.Errorf("Beta(%v,%v) sample variance %v, want %v", b.Alpha, b.Beta, variance, b.Variance())
		}
	}
}

func TestBetaMode(t *testing.T) {
	b := NewBeta(3, 2)
	if got, want := b.Mode(), 2.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Mode = %v, want %v", got, want)
	}
	// Shapes ≤ 1 fall back to the mean.
	u := NewBeta(1, 1)
	if got := u.Mode(); got != 0.5 {
		t.Fatalf("uniform Mode = %v, want 0.5", got)
	}
}

func TestBetaObserveConvergesProperty(t *testing.T) {
	// Property: with enough evidence at rate p, the posterior mean is
	// within 0.02 of p regardless of prior.
	f := func(pRaw, aRaw, bRaw uint8) bool {
		p := 0.05 + 0.9*float64(pRaw)/255
		prior := NewBeta(0.5+float64(aRaw)/32, 0.5+float64(bRaw)/32)
		const n = 10000
		post := prior.Observe(p*n, (1-p)*n)
		return math.Abs(post.Mean()-p) < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
