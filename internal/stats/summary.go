package stats

import (
	"math"
	"sort"
)

// Sum adds the values with Kahan compensation; experiment series are
// aggregated over many runs and iterations, and plain accumulation drifts
// noticeably at the precision the MAE curves are compared at.
func Sum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased sample variance (n−1 denominator), or 0
// when fewer than two values are given.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median, or 0 for an empty slice. The input is not
// modified.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// MeanAbsDiff returns the mean absolute difference between paired slices,
// the MAE metric of §C.1. It panics on length mismatch and returns 0 for
// empty input.
func MeanAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: MeanAbsDiff length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s / float64(len(a))
}

// Series is a sequence of per-iteration values for one experimental
// condition (one method, one seed).
type Series []float64

// AverageSeries averages point-wise across runs; ragged inputs are
// averaged over however many runs reach each index, so shorter runs do
// not truncate the curve.
func AverageSeries(runs []Series) Series {
	maxLen := 0
	for _, r := range runs {
		if len(r) > maxLen {
			maxLen = len(r)
		}
	}
	out := make(Series, maxLen)
	for i := 0; i < maxLen; i++ {
		var s float64
		var n int
		for _, r := range runs {
			if i < len(r) {
				s += r[i]
				n++
			}
		}
		if n > 0 {
			out[i] = s / float64(n)
		}
	}
	return out
}
