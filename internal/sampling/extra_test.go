package sampling

import (
	"testing"

	"exptrain/internal/belief"
	"exptrain/internal/dataset"
	"exptrain/internal/fd"
	"exptrain/internal/stats"
)

func TestQBCSelectBasics(t *testing.T) {
	rel, space := fixture()
	b := belief.UniformPrior(space, 0.5, 0.15)
	pool := allPairs(rel)
	got := QueryByCommittee{}.Select(rel, pool, b, 5, stats.NewRNG(1))
	if len(got) != 5 {
		t.Fatalf("selected %d", len(got))
	}
	seen := map[dataset.Pair]bool{}
	for _, p := range got {
		if seen[p] {
			t.Fatal("duplicate selection")
		}
		seen[p] = true
	}
}

func TestQBCPrefersContestedPairs(t *testing.T) {
	rel, space := fixture()
	// A tight posterior (no disagreement possible) vs a wide one.
	tight := belief.New(space, stats.NewBeta(500, 500)) // mean 0.5, very tight
	wide := belief.New(space, stats.NewBeta(0.6, 0.6))  // mean 0.5, U-shaped

	pool := allPairs(rel)
	rng := stats.NewRNG(3)
	s := QueryByCommittee{Committee: 15}

	// With a tight posterior at 0.5, every member votes identically
	// (conf just under/over 0.5 consistently): entropy collapses. With a
	// wide posterior, members disagree and entropy is positive for pairs
	// that violate something. We verify via the score indirectly: the
	// wide posterior should yield a selection containing at least one
	// pair that violates some hypothesis.
	violatesSomething := func(p dataset.Pair) bool {
		return wide.PDirty(rel, p) > 0 || tight.PDirty(rel, p) > 0
	}
	got := s.Select(rel, pool, wide, 3, rng)
	any := false
	for _, p := range got {
		if violatesSomething(p) {
			any = true
		}
	}
	if !any {
		t.Fatal("QBC with a wide posterior ignored all contested pairs")
	}
}

func TestQBCDeterministicGivenRNG(t *testing.T) {
	rel, space := fixture()
	b := belief.UniformPrior(space, 0.5, 0.15)
	pool := allPairs(rel)
	a := QueryByCommittee{}.Select(rel, pool, b, 4, stats.NewRNG(9))
	c := QueryByCommittee{}.Select(rel, pool, b, 4, stats.NewRNG(9))
	for i := range a {
		if a[i] != c[i] {
			t.Fatal("same RNG state produced different selections")
		}
	}
}

func TestEpsilonGreedyBasics(t *testing.T) {
	rel, space := fixture()
	b := belief.UniformPrior(space, 0.5, 0.15)
	pool := allPairs(rel)
	got := EpsilonGreedy{Epsilon: 0.3}.Select(rel, pool, b, 8, stats.NewRNG(2))
	if len(got) != 8 {
		t.Fatalf("selected %d", len(got))
	}
	seen := map[dataset.Pair]bool{}
	for _, p := range got {
		if seen[p] {
			t.Fatal("duplicate selection")
		}
		seen[p] = true
	}
	// Oversized k clamps.
	if got := (EpsilonGreedy{}).Select(rel, pool[:3], b, 10, stats.NewRNG(2)); len(got) != 3 {
		t.Fatalf("clamped select returned %d", len(got))
	}
}

func TestEpsilonGreedyZeroEpsMatchesUS(t *testing.T) {
	rel, space := fixture()
	b := belief.New(space, stats.MustBetaFromMoments(0.9, 0.05))
	idx, _ := space.Index(fd.MustNew(fd.NewAttrSet(0), 1))
	b.SetDist(idx, stats.NewBeta(1, 1))
	pool := allPairs(rel)

	// ε close to zero: first pick must be US's first pick.
	eg := EpsilonGreedy{Epsilon: 1e-12}.Select(rel, pool, b, 1, stats.NewRNG(4))
	us := Uncertainty{}.Select(rel, pool, b, 1, stats.NewRNG(4))
	if eg[0] != us[0] {
		t.Fatalf("ε→0 pick %v differs from US pick %v", eg[0], us[0])
	}
}

func TestEpsilonGreedyExplores(t *testing.T) {
	rel, space := fixture()
	b := belief.New(space, stats.MustBetaFromMoments(0.7, 0.05))
	pool := allPairs(rel)
	rng := stats.NewRNG(6)

	distinct := func(s Sampler, trials int) int {
		seen := map[dataset.Pair]bool{}
		for i := 0; i < trials; i++ {
			for _, p := range s.Select(rel, pool, b, 2, rng) {
				seen[p] = true
			}
		}
		return len(seen)
	}
	if eg, us := distinct(EpsilonGreedy{Epsilon: 0.9}, 40), distinct(Uncertainty{}, 40); eg <= us {
		t.Fatalf("ε=0.9 visited %d distinct pairs, greedy %d", eg, us)
	}
}

func TestByNameExtras(t *testing.T) {
	for _, name := range []string{"QBC", "EpsilonGreedy"} {
		s, err := ByName(name, 0.5)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("Name = %q", s.Name())
		}
	}
}
