package sampling

import (
	"errors"
	"fmt"
)

// Method is the typed identifier of a learner response strategy. It
// replaces the stringly-typed method names that used to flow through
// configuration structs: the zero value resolves to the paper's
// recommended StochasticUS, every concrete value round-trips through
// String/ParseMethod, and the type implements encoding.TextMarshaler /
// TextUnmarshaler so it can ride JSON wire formats directly.
type Method int

const (
	// MethodDefault is the zero value; it resolves to StochasticUS (the
	// paper's recommended strategy) wherever a concrete method is
	// needed, so zero-valued configuration keeps its historical default.
	MethodDefault Method = iota
	// MethodRandom is fixed random sampling, the paper's baseline.
	MethodRandom
	// MethodUS is greedy uncertainty sampling.
	MethodUS
	// MethodStochasticBR is stochastic best response (Section 4).
	MethodStochasticBR
	// MethodStochasticUS is stochastic uncertainty sampling (Section 4).
	MethodStochasticUS
	// MethodQBC is the query-by-committee extension.
	MethodQBC
	// MethodEpsilonGreedy is the ε-greedy extension.
	MethodEpsilonGreedy
)

// ErrUnknownMethod is the sentinel wrapped by ParseMethod, New and
// ByName when a method name or value is not recognized; test with
// errors.Is.
var ErrUnknownMethod = errors.New("sampling: unknown method")

// methodNames maps each concrete method to the paper's name. Indexed by
// Method value minus MethodRandom.
var methodNames = [...]string{
	MethodRandom:        "Random",
	MethodUS:            "US",
	MethodStochasticBR:  "StochasticBR",
	MethodStochasticUS:  "StochasticUS",
	MethodQBC:           "QBC",
	MethodEpsilonGreedy: "EpsilonGreedy",
}

// Resolve maps MethodDefault to the concrete default (StochasticUS) and
// returns every other value unchanged.
func (m Method) Resolve() Method {
	if m == MethodDefault {
		return MethodStochasticUS
	}
	return m
}

// Valid reports whether m (after default resolution) names a known
// strategy.
func (m Method) Valid() bool {
	r := m.Resolve()
	return r >= MethodRandom && int(r) < len(methodNames)
}

// String returns the paper's method name. MethodDefault renders as the
// strategy it resolves to; out-of-range values render as
// "Method(<n>)".
func (m Method) String() string {
	r := m.Resolve()
	if r >= MethodRandom && int(r) < len(methodNames) {
		return methodNames[r]
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// ParseMethod maps a paper method name ("Random", "US", "StochasticBR",
// "StochasticUS", "QBC", "EpsilonGreedy") to its Method. Unknown names
// return an error wrapping ErrUnknownMethod. ParseMethod(m.String())
// == m for every valid concrete method.
func ParseMethod(name string) (Method, error) {
	for m := MethodRandom; int(m) < len(methodNames); m++ {
		if methodNames[m] == name {
			return m, nil
		}
	}
	return MethodDefault, fmt.Errorf("%w %q", ErrUnknownMethod, name)
}

// MarshalText implements encoding.TextMarshaler: the wire form is the
// paper's method name.
func (m Method) MarshalText() ([]byte, error) {
	if !m.Valid() {
		return nil, fmt.Errorf("%w %d", ErrUnknownMethod, int(m))
	}
	return []byte(m.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler. The empty string
// decodes to MethodDefault so omitted JSON fields keep the default.
func (m *Method) UnmarshalText(b []byte) error {
	if len(b) == 0 {
		*m = MethodDefault
		return nil
	}
	parsed, err := ParseMethod(string(b))
	if err != nil {
		return err
	}
	*m = parsed
	return nil
}

// New constructs the sampler for a method; gamma applies to the
// stochastic strategies (DefaultGamma when zero). Invalid values return
// an error wrapping ErrUnknownMethod.
func New(m Method, gamma float64) (Sampler, error) {
	switch m.Resolve() {
	case MethodRandom:
		return Random{}, nil
	case MethodUS:
		return Uncertainty{}, nil
	case MethodStochasticBR:
		return StochasticBR{Gamma: gamma}, nil
	case MethodStochasticUS:
		return StochasticUS{Gamma: gamma}, nil
	case MethodQBC:
		return QueryByCommittee{}, nil
	case MethodEpsilonGreedy:
		return EpsilonGreedy{}, nil
	default:
		return nil, fmt.Errorf("%w %d", ErrUnknownMethod, int(m))
	}
}

// Methods lists the paper's four strategies in presentation order.
func Methods() []Method {
	return []Method{MethodRandom, MethodUS, MethodStochasticBR, MethodStochasticUS}
}
