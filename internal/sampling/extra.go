package sampling

import (
	"exptrain/internal/belief"
	"exptrain/internal/dataset"
	"exptrain/internal/fd"
	"exptrain/internal/stats"
)

// This file adds two response strategies beyond the paper's four — a
// Bayesian query-by-committee and an ε-greedy hybrid — used by the
// ablation benches to position the paper's stochastic strategies
// against other classic exploration mechanisms.

// QueryByCommittee scores pairs by committee disagreement: each
// committee member is a hypothesis-confidence vector sampled from the
// learner's posterior (one draw per Beta), votes dirty/clean on each
// candidate pair, and the pair's score is the vote entropy. Pairs the
// posterior is genuinely undecided about — not merely pairs whose point
// estimate sits near 1/2 — score highest.
type QueryByCommittee struct {
	// Committee is the number of sampled members (default 5).
	Committee int
}

// Name implements Sampler.
func (QueryByCommittee) Name() string { return "QBC" }

// Select implements Sampler.
func (s QueryByCommittee) Select(rel *dataset.Relation, pool []dataset.Pair, b *belief.Belief, k int, rng *stats.RNG) []dataset.Pair {
	committee := s.Committee
	if committee <= 0 {
		committee = 5
	}
	// Draw the members: per member, one confidence sample per
	// hypothesis.
	confs := make([][]float64, committee)
	for m := range confs {
		confs[m] = make([]float64, b.Size())
		for i := 0; i < b.Size(); i++ {
			confs[m][i] = b.Dist(i).Sample(rng)
		}
	}
	space := b.Space()
	voteEntropy := func(p dataset.Pair) float64 {
		dirty := 0
		for m := 0; m < committee; m++ {
			for i := 0; i < space.Size(); i++ {
				if confs[m][i] >= 0.5 && fd.Status(space.FD(i), rel, p) == fd.Violating {
					dirty++
					break
				}
			}
		}
		return stats.BernoulliEntropy(float64(dirty) / float64(committee))
	}
	return topKByScore(pool, k, voteEntropy)
}

// EpsilonGreedy mixes greedy uncertainty sampling with uniform
// exploration: each of the k picks is uniform-random with probability
// Epsilon and the highest-entropy remaining pair otherwise — the
// classic bandit-style exploration baseline.
type EpsilonGreedy struct {
	// Epsilon is the exploration probability (default 0.2).
	Epsilon float64
}

// Name implements Sampler.
func (EpsilonGreedy) Name() string { return "EpsilonGreedy" }

// Select implements Sampler.
func (s EpsilonGreedy) Select(rel *dataset.Relation, pool []dataset.Pair, b *belief.Belief, k int, rng *stats.RNG) []dataset.Pair {
	eps := s.Epsilon
	if eps == 0 { //etlint:ignore floatcmp zero value means unset; callers assign literals
		eps = 0.2
	}
	if k > len(pool) {
		k = len(pool)
	}
	// Rank once by entropy; then walk the ranking, substituting random
	// picks with probability ε.
	ranked := topKByScore(pool, len(pool), func(p dataset.Pair) float64 {
		return b.Uncertainty(rel, p)
	})
	taken := make(map[dataset.Pair]struct{}, k)
	out := make([]dataset.Pair, 0, k)
	next := 0
	takeGreedy := func() {
		for next < len(ranked) {
			p := ranked[next]
			next++
			if _, dup := taken[p]; !dup {
				taken[p] = struct{}{}
				out = append(out, p)
				return
			}
		}
	}
	for len(out) < k {
		if rng.Float64() < eps {
			// Uniform exploration; retry a few times on duplicates, then
			// fall back to greedy so selection always terminates.
			picked := false
			for attempt := 0; attempt < 8; attempt++ {
				p := pool[rng.Intn(len(pool))]
				if _, dup := taken[p]; !dup {
					taken[p] = struct{}{}
					out = append(out, p)
					picked = true
					break
				}
			}
			if picked {
				continue
			}
		}
		takeGreedy()
	}
	return out
}
