// Package sampling implements the learner's response strategies — the
// policies that pick which tuple pairs to present to the trainer in each
// interaction (Section 4 and §C.1):
//
//   - Random: fixed random sampling, the paper's baseline;
//   - Uncertainty: greedy uncertainty sampling, the state-of-the-art
//     active-learning comparator (US);
//   - StochasticBR: stochastic best response — softmax over the
//     learner's expected labeling payoff u_a with temperature γ;
//   - StochasticUS: stochastic uncertainty sampling — softmax over the
//     prediction entropy with temperature γ.
//
// FD violations are properties of tuple pairs, so all strategies select
// pairs rather than single tuples (§C.1).
package sampling

import (
	"fmt"
	"sort"
	"sync"

	"exptrain/internal/belief"
	"exptrain/internal/dataset"
	"exptrain/internal/stats"
)

// selectScratch holds the per-selection scoring buffers. The samplers
// are stateless values, so the scratch lives in a package pool; every
// buffer is fully overwritten before it is read (scores and probs are
// assigned for all pool indices, idx is refilled), so reuse cannot leak
// state between selections and determinism is unaffected.
type selectScratch struct {
	scores []float64
	probs  []float64
	idx    []int
}

var selPool = sync.Pool{New: func() any { return new(selectScratch) }}

// floats returns buf resized to n, reallocating when capacity is short.
func floats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// DefaultGamma is the exploration temperature used throughout the
// paper's evaluation (§C.1 sets γ = 0.5 in all experiments).
const DefaultGamma = 0.5

// Sampler selects k pairs from the candidate pool given the learner's
// current belief. Implementations must not mutate the pool and must be
// deterministic given the RNG state.
type Sampler interface {
	// Name identifies the strategy in experiment reports, matching the
	// paper's method names.
	Name() string
	// Select returns min(k, len(pool)) distinct pairs from pool.
	Select(rel *dataset.Relation, pool []dataset.Pair, b *belief.Belief, k int, rng *stats.RNG) []dataset.Pair
}

// Random is the Fixed Random Sampling baseline: it ignores the belief
// entirely and picks pairs uniformly at random.
type Random struct{}

// Name implements Sampler.
func (Random) Name() string { return "Random" }

// Select implements Sampler.
func (Random) Select(_ *dataset.Relation, pool []dataset.Pair, _ *belief.Belief, k int, rng *stats.RNG) []dataset.Pair {
	if k > len(pool) {
		k = len(pool)
	}
	idx := rng.SampleWithoutReplacement(len(pool), k)
	out := make([]dataset.Pair, k)
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}

// Uncertainty is greedy uncertainty sampling (US): it deterministically
// picks the k pairs with the highest prediction entropy under the
// learner's belief. It fully trusts the current model — the behaviour
// the paper shows is brittle when the model's prior is wrong.
type Uncertainty struct{}

// Name implements Sampler.
func (Uncertainty) Name() string { return "US" }

// Select implements Sampler.
func (Uncertainty) Select(rel *dataset.Relation, pool []dataset.Pair, b *belief.Belief, k int, rng *stats.RNG) []dataset.Pair {
	return topKByScore(pool, k, func(p dataset.Pair) float64 {
		return b.Uncertainty(rel, p)
	})
}

// StochasticBR is the stochastic best response of Section 4: pair x is
// selected with probability proportional to exp(u_a(θ, x)/γ) where
// u_a is the learner's expected labeling payoff under its own belief.
// Low γ approaches greedy payoff maximization; high γ approaches
// uniform exploration.
type StochasticBR struct {
	// Gamma is the exploration temperature; DefaultGamma when zero.
	Gamma float64
}

// Name implements Sampler.
func (StochasticBR) Name() string { return "StochasticBR" }

// Select implements Sampler.
func (s StochasticBR) Select(rel *dataset.Relation, pool []dataset.Pair, b *belief.Belief, k int, rng *stats.RNG) []dataset.Pair {
	return softmaxSelect(pool, k, gammaOrDefault(s.Gamma), rng, func(p dataset.Pair) float64 {
		return b.SelfPayoff(rel, p)
	})
}

// StochasticUS is stochastic uncertainty sampling (Section 4): the
// uncertainty-sampling score fed through the same softmax response, so
// the learner still prefers uncertain pairs but presents a diverse,
// representative sample. As γ → 0 it approximates greedy US.
type StochasticUS struct {
	// Gamma is the exploration temperature; DefaultGamma when zero.
	Gamma float64
}

// Name implements Sampler.
func (StochasticUS) Name() string { return "StochasticUS" }

// Select implements Sampler.
func (s StochasticUS) Select(rel *dataset.Relation, pool []dataset.Pair, b *belief.Belief, k int, rng *stats.RNG) []dataset.Pair {
	return softmaxSelect(pool, k, gammaOrDefault(s.Gamma), rng, func(p dataset.Pair) float64 {
		return b.Uncertainty(rel, p)
	})
}

func gammaOrDefault(g float64) float64 {
	if g == 0 { //etlint:ignore floatcmp zero value means unset; callers assign literals
		return DefaultGamma
	}
	if g < 0 {
		panic(fmt.Sprintf("sampling: negative gamma %v", g))
	}
	return g
}

// topKByScore returns the k highest-scoring pairs, ties broken by pool
// order for determinism.
func topKByScore(pool []dataset.Pair, k int, score func(dataset.Pair) float64) []dataset.Pair {
	if k > len(pool) {
		k = len(pool)
	}
	sc := selPool.Get().(*selectScratch)
	if cap(sc.idx) < len(pool) {
		sc.idx = make([]int, len(pool))
	}
	idx := sc.idx[:len(pool)]
	scores := floats(sc.scores, len(pool))
	for i, p := range pool {
		idx[i] = i
		scores[i] = score(p)
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	out := make([]dataset.Pair, k)
	for i := 0; i < k; i++ {
		out[i] = pool[idx[i]]
	}
	sc.idx, sc.scores = idx, scores
	selPool.Put(sc)
	return out
}

// softmaxSelect draws k distinct pairs with probabilities proportional
// to exp(score/γ), removing each drawn pair from the distribution.
func softmaxSelect(pool []dataset.Pair, k int, gamma float64, rng *stats.RNG, score func(dataset.Pair) float64) []dataset.Pair {
	if k > len(pool) {
		k = len(pool)
	}
	sc := selPool.Get().(*selectScratch)
	scores := floats(sc.scores, len(pool))
	for i, p := range pool {
		scores[i] = score(p)
	}
	probs := floats(sc.probs, len(pool))
	stats.Softmax(probs, scores, gamma)
	out := make([]dataset.Pair, 0, k)
	for len(out) < k {
		i := stats.SampleCategorical(rng, probs)
		out = append(out, pool[i])
		probs[i] = 0
		stats.Normalize(probs)
	}
	sc.scores, sc.probs = scores, probs
	selPool.Put(sc)
	return out
}

// ByName constructs the sampler matching the paper's method name
// ("Random", "US", "StochasticBR", "StochasticUS"); gamma applies to the
// stochastic strategies. Unknown names return an error wrapping
// ErrUnknownMethod. Typed callers should prefer ParseMethod + New.
func ByName(name string, gamma float64) (Sampler, error) {
	m, err := ParseMethod(name)
	if err != nil {
		return nil, err
	}
	return New(m, gamma)
}

// AllMethods lists the paper's four methods in presentation order.
func AllMethods(gamma float64) []Sampler {
	out := make([]Sampler, 0, 4)
	for _, m := range Methods() {
		s, _ := New(m, gamma)
		out = append(out, s)
	}
	return out
}
