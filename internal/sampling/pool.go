package sampling

import (
	"exptrain/internal/dataset"
	"exptrain/internal/fd"
	"exptrain/internal/stats"
)

// Pool supplies candidate pairs for the samplers. FD evidence only flows
// through LHS-agreeing pairs, so the pool is built from the agreeing
// pairs of every hypothesis (deduplicated) plus uniformly random pairs
// for coverage; pairs already presented are excluded so every
// interaction shows fresh examples (Section 2 assumes the learner
// provides a fresh example in each interaction).
type Pool struct {
	rel   *dataset.Relation
	total int
	// unshown holds the not-yet-presented pairs in original pool order;
	// MarkShown compacts it into scratch and swaps the two, so
	// Remaining is O(1) and steady-state allocation-free.
	unshown []dataset.Pair
	scratch []dataset.Pair
	shown   map[dataset.Pair]struct{}
}

// PoolConfig sizes the candidate pool.
type PoolConfig struct {
	// MaxAgreeingPerFD caps the agreeing pairs contributed per
	// hypothesis (0 means 200). Hot hypotheses on large relations would
	// otherwise dominate memory.
	MaxAgreeingPerFD int
	// RandomPairs is the number of uniformly random extra pairs (0 means
	// twice the relation size).
	RandomPairs int
	// Seed drives the pool's sub-sampling RNG.
	Seed uint64
}

// NewPool builds the candidate pool for the hypothesis space over rel.
// Hypotheses sharing an LHS (every RHS choice over the same attribute
// set) reuse one stripped partition through a PLI cache, so pool
// construction partitions once per distinct LHS rather than once per
// FD.
func NewPool(rel *dataset.Relation, space *fd.Space, cfg PoolConfig) *Pool {
	maxPer := cfg.MaxAgreeingPerFD
	if maxPer <= 0 {
		maxPer = 200
	}
	randomPairs := cfg.RandomPairs
	if randomPairs <= 0 {
		randomPairs = 2 * rel.NumRows()
	}
	rng := stats.NewRNG(cfg.Seed)
	cache := fd.NewPLICache(rel)

	seen := make(map[dataset.Pair]struct{})
	var pairs []dataset.Pair
	add := func(p dataset.Pair) {
		if _, dup := seen[p]; !dup {
			seen[p] = struct{}{}
			pairs = append(pairs, p)
		}
	}
	for i := 0; i < space.Size(); i++ {
		agreeing := cache.AgreeingPairs(space.FD(i))
		if len(agreeing) > maxPer {
			idx := rng.SampleWithoutReplacement(len(agreeing), maxPer)
			for _, j := range idx {
				add(agreeing[j])
			}
		} else {
			for _, p := range agreeing {
				add(p)
			}
		}
	}
	n := rel.NumRows()
	if n >= 2 {
		for t := 0; t < randomPairs; t++ {
			a := rng.Intn(n)
			b := rng.Intn(n)
			if a == b {
				continue
			}
			add(dataset.NewPair(a, b))
		}
	}
	return &Pool{rel: rel, total: len(pairs), unshown: pairs, shown: make(map[dataset.Pair]struct{})}
}

// Remaining returns the candidate pairs not yet marked shown, in
// original pool order. The slice is the pool's maintained unshown view
// — O(1), no allocation or rescan. It must not be mutated and is
// invalidated by later MarkShown calls; copy it to retain a snapshot.
func (p *Pool) Remaining() []dataset.Pair {
	return p.unshown
}

// MarkShown records that the pairs were presented, removing them from
// future Remaining calls. The unshown view is compacted into a reused
// buffer, preserving order — order-preservation is what keeps seeded
// sampler runs bit-identical to the original filter-on-read
// implementation (a swap-remove would permute what the samplers see).
func (p *Pool) MarkShown(pairs []dataset.Pair) {
	fresh := 0
	for _, pr := range pairs {
		if _, dup := p.shown[pr]; !dup {
			p.shown[pr] = struct{}{}
			fresh++
		}
	}
	if fresh == 0 {
		return
	}
	buf := p.scratch[:0]
	for _, pr := range p.unshown {
		if _, done := p.shown[pr]; !done {
			buf = append(buf, pr)
		}
	}
	p.scratch = p.unshown[:0]
	p.unshown = buf
}

// RemainingCount returns how many fresh pairs the pool still holds —
// an O(1) counter for callers that only need the number (no slice
// exposure, no aliasing concerns).
func (p *Pool) RemainingCount() int { return len(p.unshown) }

// Size returns the total pool size (shown and unshown).
func (p *Pool) Size() int { return p.total }

// ShownCount returns how many pairs have been presented.
func (p *Pool) ShownCount() int { return len(p.shown) }
