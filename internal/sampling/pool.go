package sampling

import (
	"sort"

	"exptrain/internal/dataset"
	"exptrain/internal/fd"
	"exptrain/internal/stats"
)

// Pool supplies candidate pairs for the samplers. FD evidence only flows
// through LHS-agreeing pairs, so the pool is built from the agreeing
// pairs of every hypothesis (deduplicated) plus uniformly random pairs
// for coverage; pairs already presented are excluded so every
// interaction shows fresh examples (Section 2 assumes the learner
// provides a fresh example in each interaction).
type Pool struct {
	rel   *dataset.Relation
	total int
	// unshown holds the not-yet-presented pairs in original pool order;
	// MarkShown compacts it into scratch and swaps the two, so
	// Remaining is O(1) and steady-state allocation-free.
	unshown []dataset.Pair
	scratch []dataset.Pair
	shown   map[dataset.Pair]struct{}
}

// PoolConfig sizes the candidate pool.
type PoolConfig struct {
	// MaxAgreeingPerFD caps the agreeing pairs contributed per
	// hypothesis (0 means 200). Hot hypotheses on large relations would
	// otherwise dominate memory.
	MaxAgreeingPerFD int
	// RandomPairs is the number of uniformly random extra pairs (0 means
	// twice the relation size).
	RandomPairs int
	// Seed drives the pool's sub-sampling RNG.
	Seed uint64
}

// NewPool builds the candidate pool for the hypothesis space over rel.
// Hypotheses sharing an LHS (every RHS choice over the same attribute
// set) reuse one stripped partition through a PLI cache, so pool
// construction partitions once per distinct LHS rather than once per
// FD. Agreeing pairs are never materialized: a hypothesis with more
// pairs than the cap has its sample indices decoded arithmetically off
// the partition's class sizes, so construction cost is O(classes +
// cap) per FD instead of O(n²/dictionary) — the difference between
// rows=10⁵ finishing and thrashing.
func NewPool(rel *dataset.Relation, space *fd.Space, cfg PoolConfig) *Pool {
	maxPer := cfg.MaxAgreeingPerFD
	if maxPer <= 0 {
		maxPer = 200
	}
	randomPairs := cfg.RandomPairs
	if randomPairs <= 0 {
		randomPairs = 2 * rel.NumRows()
	}
	rng := stats.NewRNG(cfg.Seed)
	cache := fd.NewPLICache(rel)

	seen := make(map[dataset.Pair]struct{})
	var pairs []dataset.Pair
	add := func(p dataset.Pair) {
		if _, dup := seen[p]; !dup {
			seen[p] = struct{}{}
			pairs = append(pairs, p)
		}
	}
	var cum []int // per-class cumulative pair counts, reused across FDs
	for i := 0; i < space.Size(); i++ {
		part := cache.Partition(space.FD(i).LHS)
		total := part.AgreeingPairCount()
		if total > maxPer {
			// Same RNG draw the materialized version made over the pair
			// list, decoded against the partition's deterministic
			// enumeration order (classes by smallest member, ascending
			// (a,b) within a class) so the pool contents and order are
			// bit-identical to building the full list first.
			cum = cum[:0]
			run := 0
			for _, rows := range part.Classes {
				m := len(rows)
				run += m * (m - 1) / 2
				cum = append(cum, run)
			}
			idx := rng.SampleWithoutReplacement(total, maxPer)
			for _, j := range idx {
				add(pairAt(part, cum, j))
			}
		} else {
			for _, rows := range part.Classes {
				for a := 0; a < len(rows); a++ {
					for b := a + 1; b < len(rows); b++ {
						add(dataset.Pair{A: int(rows[a]), B: int(rows[b])})
					}
				}
			}
		}
	}
	n := rel.NumRows()
	if n >= 2 {
		for t := 0; t < randomPairs; t++ {
			a := rng.Intn(n)
			b := rng.Intn(n)
			if a == b {
				continue
			}
			add(dataset.NewPair(a, b))
		}
	}
	return &Pool{rel: rel, total: len(pairs), unshown: pairs, shown: make(map[dataset.Pair]struct{})}
}

// pairAt decodes the t-th agreeing pair (0-based, partition enumeration
// order) without expanding any pair list. cum holds the cumulative pair
// counts per class. Within a class of m ascending members, the pairs
// with first index a precede those with a+1, so S(a) = a·(2m−a−1)/2
// pairs come before first-index a; the largest a with S(a) ≤ t′ and
// b = a+1+(t′−S(a)) recover the pair.
func pairAt(p *fd.Partition, cum []int, t int) dataset.Pair {
	ci := sort.SearchInts(cum, t+1)
	rows := p.Classes[ci]
	tp := t
	if ci > 0 {
		tp -= cum[ci-1]
	}
	m := len(rows)
	a := sort.Search(m-1, func(x int) bool { return (x+1)*(2*m-x-2)/2 > tp })
	b := a + 1 + tp - a*(2*m-a-1)/2
	return dataset.Pair{A: int(rows[a]), B: int(rows[b])}
}

// Remaining returns the candidate pairs not yet marked shown, in
// original pool order. The slice is the pool's maintained unshown view
// — O(1), no allocation or rescan. It must not be mutated and is
// invalidated by later MarkShown calls; copy it to retain a snapshot.
func (p *Pool) Remaining() []dataset.Pair {
	return p.unshown //etlint:ignore scratchalias documented view contract: read-only, invalidated by MarkShown
}

// MarkShown records that the pairs were presented, removing them from
// future Remaining calls. The unshown view is compacted into a reused
// buffer, preserving order — order-preservation is what keeps seeded
// sampler runs bit-identical to the original filter-on-read
// implementation (a swap-remove would permute what the samplers see).
func (p *Pool) MarkShown(pairs []dataset.Pair) {
	fresh := 0
	for _, pr := range pairs {
		if _, dup := p.shown[pr]; !dup {
			p.shown[pr] = struct{}{}
			fresh++
		}
	}
	if fresh == 0 {
		return
	}
	buf := p.scratch[:0]
	for _, pr := range p.unshown {
		if _, done := p.shown[pr]; !done {
			buf = append(buf, pr)
		}
	}
	p.scratch = p.unshown[:0]
	p.unshown = buf
}

// RemainingCount returns how many fresh pairs the pool still holds —
// an O(1) counter for callers that only need the number (no slice
// exposure, no aliasing concerns).
func (p *Pool) RemainingCount() int { return len(p.unshown) }

// Size returns the total pool size (shown and unshown).
func (p *Pool) Size() int { return p.total }

// ShownCount returns how many pairs have been presented.
func (p *Pool) ShownCount() int { return len(p.shown) }
