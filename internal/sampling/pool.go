package sampling

import (
	"exptrain/internal/dataset"
	"exptrain/internal/fd"
	"exptrain/internal/stats"
)

// Pool supplies candidate pairs for the samplers. FD evidence only flows
// through LHS-agreeing pairs, so the pool is built from the agreeing
// pairs of every hypothesis (deduplicated) plus uniformly random pairs
// for coverage; pairs already presented are excluded so every
// interaction shows fresh examples (Section 2 assumes the learner
// provides a fresh example in each interaction).
type Pool struct {
	rel   *dataset.Relation
	pairs []dataset.Pair
	shown map[dataset.Pair]struct{}
}

// PoolConfig sizes the candidate pool.
type PoolConfig struct {
	// MaxAgreeingPerFD caps the agreeing pairs contributed per
	// hypothesis (0 means 200). Hot hypotheses on large relations would
	// otherwise dominate memory.
	MaxAgreeingPerFD int
	// RandomPairs is the number of uniformly random extra pairs (0 means
	// twice the relation size).
	RandomPairs int
	// Seed drives the pool's sub-sampling RNG.
	Seed uint64
}

// NewPool builds the candidate pool for the hypothesis space over rel.
func NewPool(rel *dataset.Relation, space *fd.Space, cfg PoolConfig) *Pool {
	maxPer := cfg.MaxAgreeingPerFD
	if maxPer <= 0 {
		maxPer = 200
	}
	randomPairs := cfg.RandomPairs
	if randomPairs <= 0 {
		randomPairs = 2 * rel.NumRows()
	}
	rng := stats.NewRNG(cfg.Seed)

	seen := make(map[dataset.Pair]struct{})
	var pairs []dataset.Pair
	add := func(p dataset.Pair) {
		if _, dup := seen[p]; !dup {
			seen[p] = struct{}{}
			pairs = append(pairs, p)
		}
	}
	for i := 0; i < space.Size(); i++ {
		agreeing := fd.AgreeingPairs(space.FD(i), rel)
		if len(agreeing) > maxPer {
			idx := rng.SampleWithoutReplacement(len(agreeing), maxPer)
			for _, j := range idx {
				add(agreeing[j])
			}
		} else {
			for _, p := range agreeing {
				add(p)
			}
		}
	}
	n := rel.NumRows()
	if n >= 2 {
		for t := 0; t < randomPairs; t++ {
			a := rng.Intn(n)
			b := rng.Intn(n)
			if a == b {
				continue
			}
			add(dataset.NewPair(a, b))
		}
	}
	return &Pool{rel: rel, pairs: pairs, shown: make(map[dataset.Pair]struct{})}
}

// Remaining returns the candidate pairs not yet marked shown. The slice
// is freshly allocated each call.
func (p *Pool) Remaining() []dataset.Pair {
	out := make([]dataset.Pair, 0, len(p.pairs))
	for _, pr := range p.pairs {
		if _, done := p.shown[pr]; !done {
			out = append(out, pr)
		}
	}
	return out
}

// MarkShown records that the pairs were presented, removing them from
// future Remaining calls.
func (p *Pool) MarkShown(pairs []dataset.Pair) {
	for _, pr := range pairs {
		p.shown[pr] = struct{}{}
	}
}

// Size returns the total pool size (shown and unshown).
func (p *Pool) Size() int { return len(p.pairs) }

// ShownCount returns how many pairs have been presented.
func (p *Pool) ShownCount() int { return len(p.shown) }
