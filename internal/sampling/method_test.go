package sampling

import (
	"encoding/json"
	"errors"
	"testing"
)

func TestMethodStringParseRoundTrip(t *testing.T) {
	concrete := []Method{
		MethodRandom, MethodUS, MethodStochasticBR,
		MethodStochasticUS, MethodQBC, MethodEpsilonGreedy,
	}
	for _, m := range concrete {
		back, err := ParseMethod(m.String())
		if err != nil {
			t.Fatalf("ParseMethod(%q): %v", m.String(), err)
		}
		if back != m {
			t.Fatalf("round trip %v → %q → %v", m, m.String(), back)
		}
	}
	if MethodDefault.String() != MethodStochasticUS.String() {
		t.Fatalf("MethodDefault renders as %q", MethodDefault.String())
	}
	if MethodDefault.Resolve() != MethodStochasticUS {
		t.Fatalf("MethodDefault resolves to %v", MethodDefault.Resolve())
	}
}

func TestParseMethodUnknown(t *testing.T) {
	if _, err := ParseMethod("nope"); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("ParseMethod unknown: err = %v, want ErrUnknownMethod", err)
	}
	if _, err := ByName("nope", 0.5); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("ByName unknown: err = %v, want ErrUnknownMethod", err)
	}
	if _, err := New(Method(42), 0.5); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("New invalid: err = %v, want ErrUnknownMethod", err)
	}
}

func TestMethodJSONRoundTrip(t *testing.T) {
	type payload struct {
		Method Method `json:"method,omitempty"`
	}
	b, err := json.Marshal(payload{Method: MethodStochasticBR})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"method":"StochasticBR"}` {
		t.Fatalf("marshal = %s", b)
	}
	var back payload
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Method != MethodStochasticBR {
		t.Fatalf("unmarshal = %v", back.Method)
	}
	// An absent or empty field decodes to the default.
	var empty payload
	if err := json.Unmarshal([]byte(`{"method":""}`), &empty); err != nil {
		t.Fatal(err)
	}
	if empty.Method != MethodDefault {
		t.Fatalf("empty method = %v", empty.Method)
	}
	if err := json.Unmarshal([]byte(`{"method":"bad"}`), &empty); err == nil {
		t.Fatal("unknown wire method should fail to decode")
	}
}

func TestNewResolvesSamplers(t *testing.T) {
	for _, m := range append(Methods(), MethodQBC, MethodEpsilonGreedy, MethodDefault) {
		s, err := New(m, 0.5)
		if err != nil {
			t.Fatalf("New(%v): %v", m, err)
		}
		if s.Name() != m.String() {
			t.Fatalf("New(%v).Name() = %q, want %q", m, s.Name(), m.String())
		}
	}
}
