package sampling

import (
	"errors"
	"testing"
)

// FuzzParseMethod: ParseMethod on arbitrary names either errors with
// ErrUnknownMethod or returns a valid method whose String round-trips
// exactly — and it never panics. The method enum rides JSON wire
// formats (service CreateRequest), so hostile names reach it directly.
func FuzzParseMethod(f *testing.F) {
	for _, m := range Methods() {
		f.Add(m.String())
	}
	f.Add("QBC")
	f.Add("EpsilonGreedy")
	f.Add("")
	f.Add("stochasticus") // wrong case must not match
	f.Add("StochasticUS ")
	f.Add("Method(3)")
	f.Fuzz(func(t *testing.T, name string) {
		m, err := ParseMethod(name)
		if err != nil {
			if !errors.Is(err, ErrUnknownMethod) {
				t.Fatalf("ParseMethod(%q) error %v does not wrap ErrUnknownMethod", name, err)
			}
			if m != MethodDefault {
				t.Fatalf("ParseMethod(%q) errored but returned %v, want MethodDefault", name, m)
			}
			return
		}
		if !m.Valid() {
			t.Fatalf("ParseMethod(%q) = %d, invalid without error", name, int(m))
		}
		if m.String() != name {
			t.Fatalf("round-trip broken: ParseMethod(%q).String() = %q", name, m.String())
		}
		// The wire form must agree with the parser.
		text, err := m.MarshalText()
		if err != nil {
			t.Fatalf("MarshalText(%v): %v", m, err)
		}
		var back Method
		if err := back.UnmarshalText(text); err != nil || back != m {
			t.Fatalf("text round-trip: %q → %v, %v (want %v)", text, back, err, m)
		}
	})
}
