package sampling

import (
	"math"
	"testing"

	"exptrain/internal/belief"
	"exptrain/internal/dataset"
	"exptrain/internal/fd"
	"exptrain/internal/stats"
)

// fixture builds a relation with a planted FD a→b (violated once) and a
// hypothesis space over its three attributes.
func fixture() (*dataset.Relation, *fd.Space) {
	rel := dataset.New(dataset.MustSchema("a", "b", "c"))
	for i := 0; i < 12; i++ {
		k := string(rune('0' + i%3))
		rel.MustAppend(dataset.Tuple{k, "f" + k, string(rune('p' + i%2))})
	}
	rel.SetValue(0, 1, "broken")
	space := fd.MustNewSpace(fd.MustEnumerate(fd.SpaceConfig{Arity: 3, MaxLHS: 2}))
	return rel, space
}

func allPairs(rel *dataset.Relation) []dataset.Pair {
	return dataset.AllPairs(rel.NumRows())
}

func TestRandomSelectBasics(t *testing.T) {
	rel, space := fixture()
	b := belief.UniformPrior(space, 0.5, 0.1)
	pool := allPairs(rel)
	got := Random{}.Select(rel, pool, b, 10, stats.NewRNG(1))
	if len(got) != 10 {
		t.Fatalf("selected %d, want 10", len(got))
	}
	seen := map[dataset.Pair]bool{}
	for _, p := range got {
		if seen[p] {
			t.Fatal("duplicate pair selected")
		}
		seen[p] = true
	}
	// Oversized k clamps.
	if got := (Random{}).Select(rel, pool[:3], b, 10, stats.NewRNG(1)); len(got) != 3 {
		t.Fatalf("clamped select returned %d", len(got))
	}
}

func TestUncertaintySelectsHighestEntropy(t *testing.T) {
	rel, space := fixture()
	// Belief with one FD at maximal uncertainty (0.5) and the rest
	// confident: only pairs violating the 0.5-FD carry entropy.
	b := belief.New(space, stats.MustBetaFromMoments(0.98, 0.01))
	target := fd.MustNew(fd.NewAttrSet(0), 1) // a→b
	idx, _ := space.Index(target)
	b.SetDist(idx, stats.NewBeta(1, 1)) // mean 0.5 → max entropy

	pool := allPairs(rel)
	got := Uncertainty{}.Select(rel, pool, b, 3, stats.NewRNG(1))
	wantScore := b.Uncertainty(rel, got[0])
	// Verify it actually returns the global top score.
	for _, p := range pool {
		if s := b.Uncertainty(rel, p); s > wantScore+1e-12 {
			t.Fatalf("US missed a higher-entropy pair: %v (%v > %v)", p, s, wantScore)
		}
	}
	// Deterministic regardless of RNG.
	again := Uncertainty{}.Select(rel, pool, b, 3, stats.NewRNG(999))
	for i := range got {
		if got[i] != again[i] {
			t.Fatal("US should be RNG independent")
		}
	}
}

func TestStochasticBRPrefersHighPayoff(t *testing.T) {
	rel, space := fixture()
	b := belief.New(space, stats.NewBeta(1, 1))
	// Make one FD certain so pairs violating it have payoff ≈ 1.
	idx, _ := space.Index(fd.MustNew(fd.NewAttrSet(0), 1))
	b.SetDist(idx, stats.MustBetaFromMoments(0.97, 0.01))

	pool := allPairs(rel)
	// Count how often the highest-payoff pair family is selected with a
	// cold temperature.
	s := StochasticBR{Gamma: 0.05}
	rng := stats.NewRNG(7)
	high, total := 0, 0
	for trial := 0; trial < 200; trial++ {
		for _, p := range s.Select(rel, pool, b, 1, rng) {
			total++
			if b.SelfPayoff(rel, p) > 0.9 {
				high++
			}
		}
	}
	if float64(high)/float64(total) < 0.8 {
		t.Fatalf("cold StochasticBR picked high-payoff pairs only %d/%d times", high, total)
	}
}

func TestStochasticUSApproachesUSAsGammaToZero(t *testing.T) {
	rel, space := fixture()
	b := belief.New(space, stats.MustBetaFromMoments(0.9, 0.05))
	idx, _ := space.Index(fd.MustNew(fd.NewAttrSet(0), 1))
	b.SetDist(idx, stats.NewBeta(1, 1))

	pool := allPairs(rel)
	usPick := Uncertainty{}.Select(rel, pool, b, 1, stats.NewRNG(1))[0]
	usScore := b.Uncertainty(rel, usPick)

	s := StochasticUS{Gamma: 0.005}
	rng := stats.NewRNG(11)
	match := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		p := s.Select(rel, pool, b, 1, rng)[0]
		if math.Abs(b.Uncertainty(rel, p)-usScore) < 1e-9 {
			match++
		}
	}
	if match < trials*9/10 {
		t.Fatalf("γ→0 StochasticUS matched US score only %d/%d times", match, trials)
	}
}

func TestStochasticSpreadsMoreThanGreedy(t *testing.T) {
	rel, space := fixture()
	b := belief.New(space, stats.MustBetaFromMoments(0.7, 0.05))
	pool := allPairs(rel)
	rng := stats.NewRNG(13)

	distinct := func(s Sampler, trials int) int {
		seen := map[dataset.Pair]bool{}
		for i := 0; i < trials; i++ {
			for _, p := range s.Select(rel, pool, b, 2, rng) {
				seen[p] = true
			}
		}
		return len(seen)
	}
	greedy := distinct(Uncertainty{}, 30)
	warm := distinct(StochasticUS{Gamma: 2}, 30)
	if warm <= greedy {
		t.Fatalf("stochastic (γ=2) visited %d distinct pairs, greedy %d — expected more exploration", warm, greedy)
	}
}

func TestSoftmaxSelectDistinct(t *testing.T) {
	rel, space := fixture()
	b := belief.New(space, stats.NewBeta(1, 1))
	pool := allPairs(rel)
	got := StochasticBR{}.Select(rel, pool, b, len(pool), stats.NewRNG(3))
	if len(got) != len(pool) {
		t.Fatalf("full draw returned %d of %d", len(got), len(pool))
	}
	seen := map[dataset.Pair]bool{}
	for _, p := range got {
		if seen[p] {
			t.Fatal("softmaxSelect returned a duplicate")
		}
		seen[p] = true
	}
}

func TestGammaDefaultsAndPanics(t *testing.T) {
	if gammaOrDefault(0) != DefaultGamma {
		t.Fatal("zero gamma should default")
	}
	if gammaOrDefault(0.3) != 0.3 {
		t.Fatal("explicit gamma overridden")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative gamma did not panic")
		}
	}()
	gammaOrDefault(-1)
}

func TestByName(t *testing.T) {
	for _, name := range []string{"Random", "US", "StochasticBR", "StochasticUS"} {
		s, err := ByName(name, 0.5)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := ByName("bogus", 0.5); err == nil {
		t.Fatal("unknown name should error")
	}
}

func TestAllMethodsOrder(t *testing.T) {
	ms := AllMethods(0.5)
	want := []string{"Random", "US", "StochasticBR", "StochasticUS"}
	if len(ms) != len(want) {
		t.Fatalf("AllMethods returned %d", len(ms))
	}
	for i, m := range ms {
		if m.Name() != want[i] {
			t.Fatalf("method %d = %q, want %q", i, m.Name(), want[i])
		}
	}
}

func TestPoolBuildsAgreeingAndRandom(t *testing.T) {
	rel, space := fixture()
	pool := NewPool(rel, space, PoolConfig{Seed: 1})
	if pool.Size() == 0 {
		t.Fatal("empty pool")
	}
	// Every agreeing pair of the planted FD should be present (well under
	// the per-FD cap at this size).
	want := fd.AgreeingPairs(fd.MustNew(fd.NewAttrSet(0), 1), rel)
	have := map[dataset.Pair]bool{}
	for _, p := range pool.Remaining() {
		have[p] = true
	}
	for _, p := range want {
		if !have[p] {
			t.Fatalf("pool missing agreeing pair %v", p)
		}
	}
}

func TestPoolMarkShownExcludes(t *testing.T) {
	rel, space := fixture()
	pool := NewPool(rel, space, PoolConfig{Seed: 2})
	before := pool.Remaining()
	pool.MarkShown(before[:5])
	after := pool.Remaining()
	if len(after) != len(before)-5 {
		t.Fatalf("Remaining = %d, want %d", len(after), len(before)-5)
	}
	shown := map[dataset.Pair]bool{}
	for _, p := range before[:5] {
		shown[p] = true
	}
	for _, p := range after {
		if shown[p] {
			t.Fatal("shown pair still in Remaining")
		}
	}
	if pool.ShownCount() != 5 {
		t.Fatalf("ShownCount = %d", pool.ShownCount())
	}
}

func TestPoolRemainingCount(t *testing.T) {
	rel, space := fixture()
	pool := NewPool(rel, space, PoolConfig{Seed: 4})
	if pool.RemainingCount() != len(pool.Remaining()) {
		t.Fatalf("RemainingCount = %d, Remaining has %d", pool.RemainingCount(), len(pool.Remaining()))
	}
	total := pool.RemainingCount()
	show := append([]dataset.Pair(nil), pool.Remaining()[:3]...)
	pool.MarkShown(show)
	if pool.RemainingCount() != total-3 {
		t.Fatalf("RemainingCount after MarkShown = %d, want %d", pool.RemainingCount(), total-3)
	}
	// Re-marking shown pairs is a no-op for the counter.
	pool.MarkShown(show)
	if pool.RemainingCount() != total-3 {
		t.Fatalf("RemainingCount after duplicate MarkShown = %d, want %d", pool.RemainingCount(), total-3)
	}
	if pool.RemainingCount() != len(pool.Remaining()) {
		t.Fatal("RemainingCount and Remaining diverged")
	}
}

func TestPoolPerFDCap(t *testing.T) {
	// A relation with one huge LHS group; cap must bound the pool.
	rel := dataset.New(dataset.MustSchema("a", "b"))
	for i := 0; i < 100; i++ {
		rel.MustAppend(dataset.Tuple{"same", string(rune('0' + i%10))})
	}
	space := fd.MustNewSpace([]fd.FD{fd.MustNew(fd.NewAttrSet(0), 1)})
	pool := NewPool(rel, space, PoolConfig{MaxAgreeingPerFD: 50, RandomPairs: 1, Seed: 3})
	// 100 rows share one group → 4950 agreeing pairs, capped at 50 (plus
	// up to 1 random pair that may or may not dedupe).
	if pool.Size() > 51 {
		t.Fatalf("pool size %d exceeds cap", pool.Size())
	}
}

func TestPoolDeterministicForSeed(t *testing.T) {
	rel, space := fixture()
	a := NewPool(rel, space, PoolConfig{Seed: 9})
	b := NewPool(rel, space, PoolConfig{Seed: 9})
	ar, br := a.Remaining(), b.Remaining()
	if len(ar) != len(br) {
		t.Fatal("same seed different pool sizes")
	}
	for i := range ar {
		if ar[i] != br[i] {
			t.Fatal("same seed different pool contents")
		}
	}
}
