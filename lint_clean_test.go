package exptrain

import (
	"testing"

	"exptrain/internal/lint"
)

// TestLintClean asserts the whole tree satisfies the project's
// determinism & concurrency rules (internal/lint) forever: no global
// randomness, no wall-clock reads in the deterministic core, no map
// iteration order leaking into results, documented lock guards
// respected, library code print-clean, no exact float comparisons in
// the core — and every //etlint:ignore carrying a written reason. This
// is `go run ./cmd/etlint ./...` as a test, so plain `go test ./...`
// enforces it even where make verify is not used.
func TestLintClean(t *testing.T) {
	pkgs, err := lint.LoadModule(".")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the module walk looks broken", len(pkgs))
	}
	for _, f := range lint.Run(pkgs, lint.AllRules()) {
		t.Errorf("%s", f)
	}
}
