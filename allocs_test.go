package exptrain

import (
	"testing"

	"exptrain/internal/belief"
	"exptrain/internal/datagen"
	"exptrain/internal/game"
	"exptrain/internal/sampling"
)

// maxAllocsPerRound is the regression ceiling for one warm session
// round (Next + Submit) at the service's default shape. The measured
// steady state is ~15 allocations (labeling slices retained in records,
// plus map growth amortization); before the incremental-PLI and
// scratch-reuse work it was ~2900. The ceiling is deliberately loose —
// it exists to catch a return to per-round partition rebuilding or
// per-call scoring-buffer churn, not to pin the exact count.
const maxAllocsPerRound = 200

// TestSessionRoundAllocations pins the steady-state allocation count of
// the interactive round hot path.
func TestSessionRoundAllocations(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is not meaningful with -short races")
	}
	ds := datagen.OMDB(240, 1)
	space := ds.Space(3, 38)
	sess, err := game.NewSession(game.SessionConfig{
		Relation: ds.Rel,
		Space:    space,
		Sampler:  sampling.StochasticUS{},
		K:        10,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	round := func() error {
		pairs, err := sess.Next()
		if err != nil {
			return err
		}
		labeled := make([]belief.Labeling, len(pairs))
		for j, p := range pairs {
			labeled[j] = belief.Labeling{Pair: p}
		}
		return sess.Submit(labeled)
	}
	// Warm the caches: the first rounds pay one-time pool and scratch
	// growth that the steady state never repeats.
	for i := 0; i < 5; i++ {
		if err := round(); err != nil {
			t.Fatal(err)
		}
	}
	var roundErr error
	avg := testing.AllocsPerRun(20, func() {
		if err := round(); err != nil && roundErr == nil {
			roundErr = err
		}
	})
	if roundErr != nil {
		t.Fatal(roundErr)
	}
	if avg > maxAllocsPerRound {
		t.Fatalf("steady-state session round allocates %.0f objects/round, ceiling %d — the hot path regressed",
			avg, maxAllocsPerRound)
	}
	t.Logf("steady-state allocations per round: %.1f (ceiling %d)", avg, maxAllocsPerRound)
}
